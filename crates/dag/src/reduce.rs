//! The DAG reducer.
//!
//! "The DAG reducer reads an incoming DAG, and eliminates previously
//! completed jobs in the DAG. … The DAG reducer simply checks for the
//! existence of the output files of each job, and if they all exist, the
//! job and all precedence of the job can be deleted. The reducer consults
//! \[the\] replica location service for the existence and location of the
//! data" (§3.2, *DAG Reducer*).
//!
//! A job is eliminated exactly when its output already exists in the
//! catalog: any consumer can then stage the existing replica instead of
//! recomputing it. Eliminating a job implicitly eliminates the need for its
//! ancestors *unless* some other surviving job still consumes their
//! outputs, which the existence check per job handles naturally.

use crate::spec::{Dag, LogicalFile};

/// Result of reducing a DAG against a replica catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// Indices of jobs whose outputs already exist; they will never be
    /// planned and count as completed from the start.
    pub eliminated: Vec<u32>,
    /// Indices of jobs that still need to run.
    pub remaining: Vec<u32>,
}

impl Reduction {
    /// Number of jobs that do not need to run.
    pub fn eliminated_count(&self) -> usize {
        self.eliminated.len()
    }
}

/// Reduce `dag` against an existence oracle (typically a batched replica
/// location service lookup).
///
/// The oracle is consulted **once per distinct output file**; SPHINX "makes
/// efficient use of the RLS by clubbing all its requests in a single call"
/// (§3.4), which is why this function takes the whole DAG rather than being
/// called per job.
pub fn reduce(dag: &Dag, mut exists: impl FnMut(&LogicalFile) -> bool) -> Reduction {
    let mut eliminated = Vec::new();
    let mut remaining = Vec::new();
    for job in &dag.jobs {
        if exists(&job.output.file) {
            eliminated.push(job.id.index);
        } else {
            remaining.push(job.id.index);
        }
    }
    Reduction {
        eliminated,
        remaining,
    }
}

/// The inputs that surviving jobs consume from *eliminated or external*
/// producers — i.e. every file the executor must be able to stage from a
/// replica catalog rather than receive from a parent job at the same site.
pub fn staged_inputs(dag: &Dag, reduction: &Reduction) -> Vec<LogicalFile> {
    let producers = dag.producers();
    let eliminated: std::collections::BTreeSet<u32> =
        reduction.eliminated.iter().copied().collect();
    let mut out = Vec::new();
    for &idx in &reduction.remaining {
        let job = &dag.jobs[idx as usize];
        for input in &job.inputs {
            let from_surviving_parent = producers
                .get(input)
                .is_some_and(|&p| !eliminated.contains(&p));
            if !from_surviving_parent && !out.contains(input) {
                out.push(input.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DagId, FileSpec, JobId, JobSpec};
    use sphinx_sim::Duration;

    fn job(dag: DagId, index: u32, inputs: &[&str], output: &str) -> JobSpec {
        JobSpec {
            id: JobId::new(dag, index),
            name: format!("job{index}"),
            inputs: inputs.iter().map(|&s| LogicalFile::from(s)).collect(),
            output: FileSpec::new(output, 10),
            compute: Duration::from_mins(1),
        }
    }

    /// j0 -> f0, j1(f0) -> f1, j2(f1) -> f2
    fn chain() -> Dag {
        let d = DagId(1);
        Dag::new(
            d,
            vec![
                job(d, 0, &["ext"], "f0"),
                job(d, 1, &["f0"], "f1"),
                job(d, 2, &["f1"], "f2"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn nothing_exists_nothing_eliminated() {
        let dag = chain();
        let r = reduce(&dag, |_| false);
        assert!(r.eliminated.is_empty());
        assert_eq!(r.remaining, vec![0, 1, 2]);
    }

    #[test]
    fn everything_exists_everything_eliminated() {
        let dag = chain();
        let r = reduce(&dag, |_| true);
        assert_eq!(r.eliminated, vec![0, 1, 2]);
        assert!(r.remaining.is_empty());
        assert_eq!(r.eliminated_count(), 3);
    }

    #[test]
    fn prefix_elimination_matches_paper_precedence_rule() {
        // f0 and f1 exist: j0, j1 and "all precedence" are gone; only j2
        // runs, staging f1 from the catalog.
        let dag = chain();
        let r = reduce(&dag, |f| f.name() == "f0" || f.name() == "f1");
        assert_eq!(r.eliminated, vec![0, 1]);
        assert_eq!(r.remaining, vec![2]);
        let staged = staged_inputs(&dag, &r);
        assert_eq!(staged, vec![LogicalFile::from("f1")]);
    }

    #[test]
    fn mid_chain_hole_keeps_ancestor_running() {
        // Only f1 exists: j1 is eliminated, but j0 must still run? No — j0's
        // output f0 is consumed only by the eliminated j1, and j0's own
        // output does not exist… but nothing consumes it, so running j0
        // would be wasted work. The paper's rule keys on output existence
        // alone; j0's output is missing so j0 remains. We preserve the
        // paper's behaviour exactly (conservative: j0 still runs).
        let dag = chain();
        let r = reduce(&dag, |f| f.name() == "f1");
        assert_eq!(r.eliminated, vec![1]);
        assert_eq!(r.remaining, vec![0, 2]);
        // j2 stages f1 from the catalog, not from j1.
        let staged = staged_inputs(&dag, &r);
        assert!(staged.contains(&LogicalFile::from("f1")));
        // j0's external input is staged too.
        assert!(staged.contains(&LogicalFile::from("ext")));
    }

    #[test]
    fn staged_inputs_empty_when_all_parents_survive() {
        let d = DagId(2);
        let dag = Dag::new(d, vec![job(d, 0, &[], "a"), job(d, 1, &["a"], "b")]).unwrap();
        let r = reduce(&dag, |_| false);
        assert!(staged_inputs(&dag, &r).is_empty());
    }

    #[test]
    fn oracle_called_once_per_output() {
        let dag = chain();
        let mut calls = 0;
        reduce(&dag, |_| {
            calls += 1;
            false
        });
        assert_eq!(calls, 3);
    }
}
