//! Ready-set tracking.
//!
//! "Choose a set of jobs that are ready for execution according to the
//! input data availability" (§3.2, *Planner*, step 1). A [`Frontier`] keeps
//! the per-job count of unfinished parents and yields jobs the instant they
//! become schedulable.

use crate::spec::Dag;
use std::collections::BTreeSet;

/// Incremental ready-set tracker over one DAG.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// Remaining unfinished parents per job index.
    waiting_on: Vec<u32>,
    /// Children adjacency.
    children: Vec<Vec<u32>>,
    /// Jobs currently ready and not yet taken.
    ready: BTreeSet<u32>,
    /// Jobs already reported complete.
    completed: Vec<bool>,
    total: usize,
    done: usize,
}

impl Frontier {
    /// Build the tracker; roots are immediately ready.
    pub fn new(dag: &Dag) -> Self {
        let parents = dag.parents();
        let waiting_on: Vec<u32> = parents.iter().map(|p| p.len() as u32).collect();
        let ready = waiting_on
            .iter()
            .enumerate()
            .filter(|(_, &w)| w == 0)
            .map(|(i, _)| i as u32)
            .collect();
        Frontier {
            children: dag.children(),
            completed: vec![false; dag.len()],
            total: dag.len(),
            done: 0,
            waiting_on,
            ready,
        }
    }

    /// Build the tracker with some jobs pre-completed (the output of the
    /// DAG reducer): those jobs count as finished from the start.
    pub fn with_completed(dag: &Dag, pre_completed: &[u32]) -> Self {
        let mut f = Frontier::new(dag);
        for &j in pre_completed {
            // A pre-completed job may not be ready yet (its parents may
            // also be pre-completed, in any order); force-complete it.
            f.ready.remove(&j);
            f.complete_inner(j);
        }
        f
    }

    /// Jobs that are ready right now, in index order.
    pub fn ready(&self) -> Vec<u32> {
        self.ready.iter().copied().collect()
    }

    /// Non-allocating view of the ready set, in index order (what the
    /// planner walks every cycle; same order as [`Frontier::ready`]).
    // sphinx-hot
    pub fn ready_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ready.iter().copied()
    }

    /// Number of jobs ready right now.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Remove a job from the ready set (it is being planned). Returns
    /// whether it was actually ready.
    pub fn take(&mut self, job: u32) -> bool {
        self.ready.remove(&job)
    }

    /// Put a previously taken job back into the ready set (its plan was
    /// cancelled and it must be replanned).
    pub fn put_back(&mut self, job: u32) {
        if !self.completed[job as usize] {
            self.ready.insert(job);
        }
    }

    fn complete_inner(&mut self, job: u32) {
        if self.completed[job as usize] {
            return;
        }
        self.completed[job as usize] = true;
        self.done += 1;
        // Detach the child list so sibling state can be mutated while
        // walking it; restored below, so no allocation per completion.
        let children = std::mem::take(&mut self.children[job as usize]);
        for &c in &children {
            let w = &mut self.waiting_on[c as usize];
            debug_assert!(*w > 0);
            *w -= 1;
            if *w == 0 && !self.completed[c as usize] {
                self.ready.insert(c);
            }
        }
        self.children[job as usize] = children;
    }

    /// Mark a job finished, releasing any children whose last dependency
    /// it was. Idempotent.
    pub fn complete(&mut self, job: u32) {
        self.ready.remove(&job);
        self.complete_inner(job);
    }

    /// Number of completed jobs.
    pub fn completed_count(&self) -> usize {
        self.done
    }

    /// True when every job has completed.
    pub fn is_finished(&self) -> bool {
        self.done == self.total
    }

    /// True if this job has completed.
    pub fn is_completed(&self, job: u32) -> bool {
        self.completed[job as usize]
    }

    /// True if this job is in the ready set right now.
    pub fn is_ready(&self, job: u32) -> bool {
        self.ready.contains(&job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DagId, FileSpec, JobId, JobSpec, LogicalFile};
    use proptest::prelude::*;
    use sphinx_sim::Duration;

    fn job(dag: DagId, index: u32, inputs: &[&str], output: &str) -> JobSpec {
        JobSpec {
            id: JobId::new(dag, index),
            name: format!("job{index}"),
            inputs: inputs.iter().map(|&s| LogicalFile::from(s)).collect(),
            output: FileSpec::new(output, 10),
            compute: Duration::from_mins(1),
        }
    }

    fn diamond() -> Dag {
        let d = DagId(1);
        Dag::new(
            d,
            vec![
                job(d, 0, &[], "f0"),
                job(d, 1, &["f0"], "f1"),
                job(d, 2, &["f0"], "f2"),
                job(d, 3, &["f1", "f2"], "f3"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roots_start_ready() {
        let f = Frontier::new(&diamond());
        assert_eq!(f.ready(), vec![0]);
    }

    #[test]
    fn completion_releases_children() {
        let mut f = Frontier::new(&diamond());
        f.complete(0);
        assert_eq!(f.ready(), vec![1, 2]);
        f.complete(1);
        assert_eq!(f.ready(), vec![2]); // 3 still waits on 2
        f.complete(2);
        assert_eq!(f.ready(), vec![3]);
        f.complete(3);
        assert!(f.is_finished());
        assert_eq!(f.completed_count(), 4);
    }

    #[test]
    fn complete_is_idempotent() {
        let mut f = Frontier::new(&diamond());
        f.complete(0);
        f.complete(0);
        assert_eq!(f.completed_count(), 1);
        assert_eq!(f.ready(), vec![1, 2]);
    }

    #[test]
    fn ready_iter_matches_ready() {
        let mut f = Frontier::new(&diamond());
        f.complete(0);
        assert_eq!(f.ready_iter().collect::<Vec<_>>(), f.ready());
        assert_eq!(f.ready_len(), 2);
    }

    #[test]
    fn take_and_put_back() {
        let mut f = Frontier::new(&diamond());
        assert!(f.take(0));
        assert!(f.ready().is_empty());
        assert!(!f.take(0));
        f.put_back(0);
        assert_eq!(f.ready(), vec![0]);
    }

    #[test]
    fn put_back_after_complete_is_noop() {
        let mut f = Frontier::new(&diamond());
        f.complete(0);
        f.put_back(0);
        assert!(!f.ready().contains(&0));
    }

    #[test]
    fn pre_completed_jobs_skip_execution() {
        let dag = diamond();
        let f = Frontier::with_completed(&dag, &[0, 1]);
        assert!(f.is_completed(0));
        assert!(f.is_completed(1));
        assert_eq!(f.completed_count(), 2);
        assert_eq!(f.ready(), vec![2]);
    }

    #[test]
    fn pre_completed_order_does_not_matter() {
        let dag = diamond();
        let a = Frontier::with_completed(&dag, &[1, 0]);
        let b = Frontier::with_completed(&dag, &[0, 1]);
        assert_eq!(a.ready(), b.ready());
    }

    /// Random layered DAG for property tests.
    fn arb_dag() -> impl Strategy<Value = Dag> {
        (2u32..30, 0u64..1000).prop_map(|(n, seed)| {
            let d = DagId(seed);
            let mut rng = sphinx_sim::SimRng::new(seed);
            let jobs: Vec<JobSpec> = (0..n)
                .map(|i| {
                    let n_inputs = rng.range_u64(0, 3.min(i as u64 + 1)) as u32;
                    let inputs: Vec<LogicalFile> = (0..n_inputs)
                        .map(|_| {
                            let p = rng.range_u64(0, i as u64) as u32;
                            LogicalFile::new(format!("d{seed}-f{p}"))
                        })
                        .collect();
                    JobSpec {
                        id: JobId::new(d, i),
                        name: format!("j{i}"),
                        inputs,
                        output: FileSpec::new(format!("d{seed}-f{i}"), 1),
                        compute: Duration::from_mins(1),
                    }
                })
                .collect();
            Dag::new(d, jobs).unwrap()
        })
    }

    proptest! {
        /// Completing jobs in any valid order finishes the DAG, and no job
        /// is ever ready before all its parents completed.
        #[test]
        fn prop_frontier_schedules_everything(dag in arb_dag(), seed in 0u64..1000) {
            let mut f = Frontier::new(&dag);
            let parents = dag.parents();
            let mut rng = sphinx_sim::SimRng::new(seed);
            let mut steps = 0;
            while !f.is_finished() {
                let ready = f.ready();
                prop_assert!(!ready.is_empty(), "stuck with unfinished jobs");
                for &j in &ready {
                    for &p in &parents[j as usize] {
                        prop_assert!(f.is_completed(p), "job ready before parent");
                    }
                }
                let pick = *rng.choose(&ready);
                f.complete(pick);
                steps += 1;
                prop_assert!(steps <= dag.len());
            }
            prop_assert_eq!(f.completed_count(), dag.len());
        }
    }
}
