//! Workload generation.
//!
//! The paper's evaluation submits "directed acyclic graphs (DAGs) of jobs,
//! each of which has 100 jobs in random structure. … The job simulates a
//! simple execution that takes two or three input files, spends one minute
//! before generating an output file. The size of output file is different
//! for each job" (§4.2). [`WorkloadSpec`] reproduces that workload and a
//! few additional shapes used by the examples.

use crate::spec::{Dag, DagId, FileSpec, JobId, JobSpec, LogicalFile};
use serde::{Deserialize, Serialize};
use sphinx_sim::{Duration, SimRng};

/// Structural family of generated DAGs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DagShape {
    /// The paper's workload: each job draws each input either from a
    /// uniformly random earlier job's output (probability `p_internal`) or
    /// from a pre-existing external dataset.
    Random {
        /// Probability that an input is internal (an earlier job's output).
        p_internal: f64,
    },
    /// A linear pipeline: job *i* consumes job *i−1*'s output.
    Chain,
    /// One splitter, `width` parallel workers, one merger.
    FanOutFanIn {
        /// Number of parallel workers.
        width: u32,
    },
    /// `layers` equal layers; each job consumes 2–3 outputs of the
    /// previous layer (high-energy-physics production style).
    Layered {
        /// Number of layers.
        layers: u32,
    },
}

/// Parameters of a generated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of DAGs to generate.
    pub dags: u32,
    /// Jobs per DAG.
    pub jobs_per_dag: u32,
    /// DAG structure.
    pub shape: DagShape,
    /// Mean nominal compute per job (paper: one minute).
    pub compute_mean: Duration,
    /// Relative jitter on compute time, in `[0, 1]`.
    pub compute_jitter: f64,
    /// Inclusive range of output file sizes, in MB.
    pub output_mb: (u64, u64),
    /// Inclusive range of the number of inputs per job (paper: 2–3).
    pub inputs_per_job: (u32, u32),
}

impl WorkloadSpec {
    /// The paper's §4.2 workload: `dags` DAGs × 100 random-structure jobs,
    /// 2–3 inputs, ~1 minute of compute, varied output sizes.
    pub fn paper(dags: u32) -> Self {
        WorkloadSpec {
            dags,
            jobs_per_dag: 100,
            shape: DagShape::Random { p_internal: 0.5 },
            compute_mean: Duration::from_mins(1),
            compute_jitter: 0.2,
            output_mb: (50, 500),
            inputs_per_job: (2, 3),
        }
    }

    /// A scaled-down variant for fast tests and examples.
    pub fn small(dags: u32, jobs_per_dag: u32) -> Self {
        WorkloadSpec {
            jobs_per_dag,
            ..WorkloadSpec::paper(dags)
        }
    }

    /// Generate the whole workload deterministically from `rng`.
    /// DAG ids are `first_id, first_id+1, …`.
    pub fn generate(&self, rng: &SimRng, first_id: u64) -> Vec<Dag> {
        (0..self.dags)
            .map(|i| {
                let id = DagId(first_id + i as u64);
                let mut stream = rng.derive_indexed("dag", id.0);
                self.generate_one(id, &mut stream)
            })
            .collect()
    }

    /// Generate a single DAG with the given id.
    pub fn generate_one(&self, id: DagId, rng: &mut SimRng) -> Dag {
        let n = self.jobs_per_dag;
        let jobs = match self.shape {
            DagShape::Random { p_internal } => self.random_jobs(id, n, p_internal, rng),
            DagShape::Chain => self.chain_jobs(id, n, rng),
            DagShape::FanOutFanIn { width } => self.fan_jobs(id, width, rng),
            DagShape::Layered { layers } => self.layered_jobs(id, n, layers, rng),
        };
        Dag::new(id, jobs).expect("generators produce valid DAGs")
    }

    fn make_job(
        &self,
        id: DagId,
        index: u32,
        inputs: Vec<LogicalFile>,
        rng: &mut SimRng,
    ) -> JobSpec {
        let size = rng.range_u64(self.output_mb.0, self.output_mb.1 + 1);
        JobSpec {
            id: JobId::new(id, index),
            name: format!("transform-{index}"),
            inputs,
            output: FileSpec::new(internal_file(id, index), size),
            compute: rng.jittered(self.compute_mean, self.compute_jitter),
        }
    }

    fn n_inputs(&self, rng: &mut SimRng) -> u32 {
        let (lo, hi) = self.inputs_per_job;
        if lo >= hi {
            lo
        } else {
            rng.range_u64(lo as u64, hi as u64 + 1) as u32
        }
    }

    fn random_jobs(&self, id: DagId, n: u32, p_internal: f64, rng: &mut SimRng) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                let k = self.n_inputs(rng);
                let mut inputs = Vec::with_capacity(k as usize);
                for slot in 0..k {
                    let internal = i > 0 && rng.chance(p_internal);
                    let file = if internal {
                        let p = rng.range_u64(0, i as u64) as u32;
                        internal_file(id, p)
                    } else {
                        external_file(id, i, slot)
                    };
                    if !inputs.contains(&file) {
                        inputs.push(file);
                    }
                }
                self.make_job(id, i, inputs, rng)
            })
            .collect()
    }

    fn chain_jobs(&self, id: DagId, n: u32, rng: &mut SimRng) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                let inputs = if i == 0 {
                    vec![external_file(id, 0, 0)]
                } else {
                    vec![internal_file(id, i - 1)]
                };
                self.make_job(id, i, inputs, rng)
            })
            .collect()
    }

    fn fan_jobs(&self, id: DagId, width: u32, rng: &mut SimRng) -> Vec<JobSpec> {
        let width = width.max(1);
        let mut jobs = Vec::with_capacity(width as usize + 2);
        jobs.push(self.make_job(id, 0, vec![external_file(id, 0, 0)], rng));
        for w in 0..width {
            jobs.push(self.make_job(id, w + 1, vec![internal_file(id, 0)], rng));
        }
        let merge_inputs = (0..width).map(|w| internal_file(id, w + 1)).collect();
        jobs.push(self.make_job(id, width + 1, merge_inputs, rng));
        jobs
    }

    fn layered_jobs(&self, id: DagId, n: u32, layers: u32, rng: &mut SimRng) -> Vec<JobSpec> {
        let layers = layers.clamp(1, n.max(1));
        let per_layer = (n / layers).max(1);
        let mut jobs: Vec<JobSpec> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let layer = (i / per_layer).min(layers - 1);
            let inputs = if layer == 0 {
                vec![external_file(id, i, 0)]
            } else {
                let lo = (layer - 1) * per_layer;
                let hi = (layer * per_layer).min(n);
                let k = self.n_inputs(rng).min(hi - lo);
                let mut inputs = Vec::new();
                for _ in 0..k.max(1) {
                    let p = rng.range_u64(lo as u64, hi as u64) as u32;
                    let f = internal_file(id, p);
                    if !inputs.contains(&f) {
                        inputs.push(f);
                    }
                }
                inputs
            };
            jobs.push(self.make_job(id, i, inputs, rng));
        }
        jobs
    }
}

/// The logical name of job `index`'s output within DAG `id`.
pub fn internal_file(id: DagId, index: u32) -> LogicalFile {
    LogicalFile::new(format!("{id}.out{index}"))
}

/// A pre-existing external dataset name, unique per (dag, job, slot).
pub fn external_file(id: DagId, job: u32, slot: u32) -> LogicalFile {
    LogicalFile::new(format!("{id}.ext{job}-{slot}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_workload_matches_section_4_2() {
        let spec = WorkloadSpec::paper(3);
        let rng = SimRng::new(42);
        let dags = spec.generate(&rng, 0);
        assert_eq!(dags.len(), 3);
        for dag in &dags {
            assert_eq!(dag.len(), 100);
            dag.validate().unwrap();
            for job in &dag.jobs {
                assert!(!job.inputs.is_empty() && job.inputs.len() <= 3);
                let secs = job.compute.as_secs_f64();
                assert!((48.0..=72.0).contains(&secs), "compute {secs}");
                assert!((50..=500).contains(&job.output.size_mb));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::paper(2);
        let a = spec.generate(&SimRng::new(7), 0);
        let b = spec.generate(&SimRng::new(7), 0);
        assert_eq!(a, b);
        let c = spec.generate(&SimRng::new(8), 0);
        assert_ne!(a, c);
    }

    #[test]
    fn dag_ids_start_at_first_id() {
        let spec = WorkloadSpec::small(3, 5);
        let dags = spec.generate(&SimRng::new(1), 10);
        assert_eq!(
            dags.iter().map(|d| d.id.0).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
    }

    #[test]
    fn chain_shape_has_full_depth() {
        let spec = WorkloadSpec {
            shape: DagShape::Chain,
            ..WorkloadSpec::small(1, 20)
        };
        let dag = &spec.generate(&SimRng::new(3), 0)[0];
        assert_eq!(dag.depth(), 20);
    }

    #[test]
    fn fan_shape_has_depth_three() {
        let spec = WorkloadSpec {
            shape: DagShape::FanOutFanIn { width: 8 },
            ..WorkloadSpec::small(1, 10)
        };
        let dag = &spec.generate(&SimRng::new(3), 0)[0];
        assert_eq!(dag.len(), 10); // 1 + 8 + 1
        assert_eq!(dag.depth(), 3);
    }

    #[test]
    fn layered_shape_has_requested_layers() {
        let spec = WorkloadSpec {
            shape: DagShape::Layered { layers: 4 },
            ..WorkloadSpec::small(1, 20)
        };
        let dag = &spec.generate(&SimRng::new(3), 0)[0];
        assert_eq!(dag.len(), 20);
        assert_eq!(dag.depth(), 4);
    }

    #[test]
    fn random_dags_have_some_parallelism_and_some_dependencies() {
        let spec = WorkloadSpec::paper(1);
        let dag = &spec.generate(&SimRng::new(11), 0)[0];
        let depth = dag.depth();
        // Random structure: neither a flat bag nor a pure chain.
        assert!(depth > 1, "no dependencies generated");
        assert!(depth < 100, "degenerated into a chain");
        assert!(!dag.external_inputs().is_empty());
    }

    proptest! {
        #[test]
        fn prop_all_shapes_generate_valid_dags(
            seed in 0u64..500,
            jobs in 2u32..40,
            shape_pick in 0u32..4,
        ) {
            let shape = match shape_pick {
                0 => DagShape::Random { p_internal: 0.5 },
                1 => DagShape::Chain,
                2 => DagShape::FanOutFanIn { width: jobs.saturating_sub(2).max(1) },
                _ => DagShape::Layered { layers: 3 },
            };
            let spec = WorkloadSpec { shape, ..WorkloadSpec::small(1, jobs) };
            let dag = &spec.generate(&SimRng::new(seed), 0)[0];
            prop_assert!(dag.validate().is_ok());
            prop_assert!(dag.topo_order().is_some());
        }
    }
}
