//! DAG and job specifications.

use serde::{Deserialize, Serialize};
use sphinx_sim::Duration;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a DAG within one SPHINX server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DagId(pub u64);

impl fmt::Display for DagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dag{}", self.0)
    }
}

/// Identifier of a job: its DAG plus its index within the DAG.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId {
    /// Owning DAG.
    pub dag: DagId,
    /// Index of the job within [`Dag::jobs`].
    pub index: u32,
}

impl JobId {
    /// Job `index` of DAG `dag`.
    pub fn new(dag: DagId, index: u32) -> Self {
        JobId { dag, index }
    }

    /// A dense `u64` encoding usable as a database primary key.
    pub fn as_key(self) -> u64 {
        (self.dag.0 << 24) | self.index as u64
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/j{}", self.dag, self.index)
    }
}

pub use sphinx_data::{FileSpec, LogicalFile};

/// One job of an abstract DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The job's identity.
    pub id: JobId,
    /// Human-readable name (transformation name in Chimera terms).
    pub name: String,
    /// Logical input files. Inputs produced by another job of the same DAG
    /// create a dependency edge; the rest must pre-exist in a replica
    /// catalog.
    pub inputs: Vec<LogicalFile>,
    /// The single output file the job derives.
    pub output: FileSpec,
    /// Nominal compute duration on a reference CPU.
    pub compute: Duration,
}

/// What a DAG validation can reject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagValidationError {
    /// Two jobs claim to derive the same logical output.
    DuplicateOutput(LogicalFile),
    /// A job's id does not match its position / owning DAG.
    MisnumberedJob { expected: JobId, found: JobId },
    /// The file-dependency relation has a cycle through this file.
    Cycle(LogicalFile),
    /// A job lists the same file as both input and output.
    SelfDependency(JobId),
}

impl fmt::Display for DagValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagValidationError::DuplicateOutput(file) => {
                write!(f, "output `{file}` derived by more than one job")
            }
            DagValidationError::MisnumberedJob { expected, found } => {
                write!(f, "job numbered {found} where {expected} expected")
            }
            DagValidationError::Cycle(file) => {
                write!(f, "dependency cycle through `{file}`")
            }
            DagValidationError::SelfDependency(job) => {
                write!(f, "job {job} consumes its own output")
            }
        }
    }
}

impl std::error::Error for DagValidationError {}

/// An abstract DAG: a set of jobs whose edges are derived from logical
/// file dependencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dag {
    /// Identity of the DAG.
    pub id: DagId,
    /// The jobs, indexed by [`JobId::index`].
    pub jobs: Vec<JobSpec>,
}

impl Dag {
    /// Build and validate a DAG.
    pub fn new(id: DagId, jobs: Vec<JobSpec>) -> Result<Self, DagValidationError> {
        let dag = Dag { id, jobs };
        dag.validate()?;
        Ok(dag)
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the DAG has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The job with the given index.
    pub fn job(&self, index: u32) -> Option<&JobSpec> {
        self.jobs.get(index as usize)
    }

    /// Map from logical output file to the index of the job deriving it.
    pub fn producers(&self) -> BTreeMap<&LogicalFile, u32> {
        self.jobs
            .iter()
            .map(|j| (&j.output.file, j.id.index))
            .collect()
    }

    /// For each job, the indices of the jobs it depends on (parents),
    /// derived from file dependencies. Sorted, deduplicated.
    pub fn parents(&self) -> Vec<Vec<u32>> {
        let producers = self.producers();
        self.jobs
            .iter()
            .map(|j| {
                let mut ps: Vec<u32> = j
                    .inputs
                    .iter()
                    .filter_map(|f| producers.get(f).copied())
                    .collect();
                ps.sort_unstable();
                ps.dedup();
                ps
            })
            .collect()
    }

    /// For each job, the indices of the jobs depending on it (children).
    pub fn children(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.jobs.len()];
        for (child, ps) in self.parents().iter().enumerate() {
            for &p in ps {
                out[p as usize].push(child as u32);
            }
        }
        out
    }

    /// Inputs that no job of this DAG produces — they must pre-exist in a
    /// replica catalog.
    pub fn external_inputs(&self) -> BTreeSet<LogicalFile> {
        let produced: BTreeSet<&LogicalFile> = self.jobs.iter().map(|j| &j.output.file).collect();
        self.jobs
            .iter()
            .flat_map(|j| j.inputs.iter())
            .filter(|f| !produced.contains(f))
            .cloned()
            .collect()
    }

    /// A topological order of job indices (parents before children).
    /// `None` if the DAG is cyclic.
    pub fn topo_order(&self) -> Option<Vec<u32>> {
        let parents = self.parents();
        let mut indegree: Vec<usize> = parents.iter().map(Vec::len).collect();
        let children = self.children();
        let mut queue: Vec<u32> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut order = Vec::with_capacity(self.jobs.len());
        let mut head = 0;
        while head < queue.len() {
            let j = queue[head];
            head += 1;
            order.push(j);
            for &c in &children[j as usize] {
                indegree[c as usize] -= 1;
                if indegree[c as usize] == 0 {
                    queue.push(c);
                }
            }
        }
        (order.len() == self.jobs.len()).then_some(order)
    }

    /// Longest path length in jobs (the critical-path depth); 0 for an
    /// empty DAG.
    pub fn depth(&self) -> usize {
        let Some(order) = self.topo_order() else {
            return 0;
        };
        let parents = self.parents();
        let mut level = vec![0usize; self.jobs.len()];
        let mut max = 0;
        for j in order {
            let l = parents[j as usize]
                .iter()
                .map(|&p| level[p as usize] + 1)
                .max()
                .unwrap_or(1);
            level[j as usize] = l;
            max = max.max(l);
        }
        max
    }

    /// Check structural invariants (see [`DagValidationError`]).
    pub fn validate(&self) -> Result<(), DagValidationError> {
        let mut seen_outputs: BTreeSet<&LogicalFile> = BTreeSet::new();
        for (i, job) in self.jobs.iter().enumerate() {
            let expected = JobId::new(self.id, i as u32);
            if job.id != expected {
                return Err(DagValidationError::MisnumberedJob {
                    expected,
                    found: job.id,
                });
            }
            if job.inputs.contains(&job.output.file) {
                return Err(DagValidationError::SelfDependency(job.id));
            }
            if !seen_outputs.insert(&job.output.file) {
                return Err(DagValidationError::DuplicateOutput(job.output.file.clone()));
            }
        }
        if self.topo_order().is_none() {
            // Identify some file on a cycle for the error message: any input
            // of a job that is in a cycle. Cheap heuristic: report the
            // output of the first job whose dependencies never resolve.
            let parents = self.parents();
            let mut indegree: Vec<usize> = parents.iter().map(Vec::len).collect();
            let children = self.children();
            let mut queue: Vec<u32> = indegree
                .iter()
                .enumerate()
                .filter(|(_, &d)| d == 0)
                .map(|(i, _)| i as u32)
                .collect();
            let mut head = 0;
            while head < queue.len() {
                let j = queue[head];
                head += 1;
                for &c in &children[j as usize] {
                    indegree[c as usize] -= 1;
                    if indegree[c as usize] == 0 {
                        queue.push(c);
                    }
                }
            }
            let stuck = indegree.iter().position(|&d| d > 0).unwrap_or(0);
            return Err(DagValidationError::Cycle(
                self.jobs[stuck].output.file.clone(),
            ));
        }
        Ok(())
    }

    /// Render the DAG in Graphviz DOT format: one node per job (labelled
    /// with its name and output), one edge per file dependency. Useful
    /// for eyeballing generated workflows (`dot -Tsvg`).
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", self.id));
        out.push_str("  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
        for job in &self.jobs {
            out.push_str(&format!(
                "  j{} [label=\"{}\\n→ {}\"];\n",
                job.id.index, job.name, job.output.file
            ));
        }
        for (child, parents) in self.parents().iter().enumerate() {
            for &p in parents {
                out.push_str(&format!("  j{p} -> j{child};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Total nominal compute across all jobs.
    pub fn total_compute(&self) -> Duration {
        self.jobs
            .iter()
            .fold(Duration::ZERO, |acc, j| acc + j.compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(dag: DagId, index: u32, inputs: &[&str], output: &str) -> JobSpec {
        JobSpec {
            id: JobId::new(dag, index),
            name: format!("job{index}"),
            inputs: inputs.iter().map(|&s| LogicalFile::from(s)).collect(),
            output: FileSpec::new(output, 100),
            compute: Duration::from_mins(1),
        }
    }

    /// in0 -> j0 -> f0 -> j1 -> f1
    ///              \-> j2 -> f2 ; j3 consumes f1+f2
    fn diamond() -> Dag {
        let d = DagId(1);
        Dag::new(
            d,
            vec![
                job(d, 0, &["in0"], "f0"),
                job(d, 1, &["f0"], "f1"),
                job(d, 2, &["f0"], "f2"),
                job(d, 3, &["f1", "f2"], "f3"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parents_and_children_derive_from_files() {
        let dag = diamond();
        let parents = dag.parents();
        assert_eq!(parents[0], Vec::<u32>::new());
        assert_eq!(parents[1], vec![0]);
        assert_eq!(parents[2], vec![0]);
        assert_eq!(parents[3], vec![1, 2]);
        let children = dag.children();
        assert_eq!(children[0], vec![1, 2]);
        assert_eq!(children[3], Vec::<u32>::new());
    }

    #[test]
    fn external_inputs_exclude_internal_products() {
        let dag = diamond();
        let ext = dag.external_inputs();
        assert_eq!(ext.len(), 1);
        assert!(ext.contains(&LogicalFile::from("in0")));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let dag = diamond();
        let order = dag.topo_order().unwrap();
        let pos = |j: u32| order.iter().position(|&x| x == j).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn depth_is_critical_path() {
        assert_eq!(diamond().depth(), 3);
        let d = DagId(2);
        let chain = Dag::new(
            d,
            vec![
                job(d, 0, &["x"], "c0"),
                job(d, 1, &["c0"], "c1"),
                job(d, 2, &["c1"], "c2"),
            ],
        )
        .unwrap();
        assert_eq!(chain.depth(), 3);
    }

    #[test]
    fn duplicate_output_rejected() {
        let d = DagId(3);
        let err = Dag::new(d, vec![job(d, 0, &[], "same"), job(d, 1, &[], "same")]).unwrap_err();
        assert_eq!(
            err,
            DagValidationError::DuplicateOutput(LogicalFile::from("same"))
        );
    }

    #[test]
    fn self_dependency_rejected() {
        let d = DagId(4);
        let err = Dag::new(d, vec![job(d, 0, &["loop"], "loop")]).unwrap_err();
        assert_eq!(err, DagValidationError::SelfDependency(JobId::new(d, 0)));
    }

    #[test]
    fn cycle_rejected() {
        let d = DagId(5);
        let err = Dag::new(d, vec![job(d, 0, &["b"], "a"), job(d, 1, &["a"], "b")]).unwrap_err();
        assert!(matches!(err, DagValidationError::Cycle(_)));
    }

    #[test]
    fn misnumbered_job_rejected() {
        let d = DagId(6);
        let mut j = job(d, 0, &[], "out");
        j.id = JobId::new(DagId(99), 0);
        let err = Dag::new(d, vec![j]).unwrap_err();
        assert!(matches!(err, DagValidationError::MisnumberedJob { .. }));
    }

    #[test]
    fn job_id_key_is_unique_per_dag_and_index() {
        let a = JobId::new(DagId(1), 2).as_key();
        let b = JobId::new(DagId(1), 3).as_key();
        let c = JobId::new(DagId(2), 2).as_key();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn total_compute_sums() {
        assert_eq!(diamond().total_compute(), Duration::from_mins(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", JobId::new(DagId(3), 7)), "dag3/j7");
        assert_eq!(format!("{}", LogicalFile::from("f.dat")), "f.dat");
    }

    #[test]
    fn dot_export_contains_all_nodes_and_edges() {
        let dag = diamond();
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph"));
        for i in 0..4 {
            assert!(dot.contains(&format!("j{i} [label=")), "node j{i}");
        }
        // The diamond's four edges.
        for edge in ["j0 -> j1", "j0 -> j2", "j1 -> j3", "j2 -> j3"] {
            assert!(dot.contains(edge), "{edge} missing:\n{dot}");
        }
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_dag_is_valid_and_trivial() {
        let dag = Dag::new(DagId(7), vec![]).unwrap();
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.topo_order(), Some(vec![]));
    }
}
