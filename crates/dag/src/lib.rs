//! Abstract workflow DAGs for SPHINX.
//!
//! SPHINX receives "an abstract DAG produced by a workflow planner such as
//! the Chimera Virtual Data System" (§3.3): a group of jobs whose edges are
//! *logical file dependencies* — job B depends on job A exactly when one of
//! B's inputs is A's output. This crate is the Chimera-equivalent substrate:
//!
//! * [`Dag`] / [`JobSpec`] — the abstract plan: per-job logical inputs, one
//!   logical output with a size, and a nominal compute duration.
//! * Validation — acyclicity, unique outputs, resolvable inputs.
//! * [`Frontier`] — the ready-set tracker the server's planner uses to pick
//!   "jobs that are ready for execution according to input data
//!   availability" (§3.2, *Planner*, step 1).
//! * [`generate`] — workload generators, including the paper's evaluation
//!   workload: N-job DAGs "in random structure" where each job "takes two
//!   or three input files, spends one minute before generating an output
//!   file" (§4.2).
//! * [`reduce()`] — the DAG reducer (§3.2): jobs whose outputs already exist
//!   in a replica catalog are eliminated before planning.

pub mod frontier;
pub mod generate;
pub mod reduce;
pub mod spec;

pub use frontier::Frontier;
pub use generate::{DagShape, WorkloadSpec};
pub use reduce::{reduce, Reduction};
pub use spec::{Dag, DagId, DagValidationError, FileSpec, JobId, JobSpec, LogicalFile};
