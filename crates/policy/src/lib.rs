//! Virtual-organisation policy engine: users, quotas, feasibility.
//!
//! Grid resources "have decentralized ownership and different local
//! scheduling policies dependent on their VO" (§1); SPHINX must enforce
//! "complex policy issues like hard disk quota and the CPU time quota used
//! by the grid user — no such accounting exists currently in the grid"
//! (§2). The paper's policy-constrained scheduling (eq. 4) restricts each
//! strategy to sites where the user's remaining usage quota covers the
//! job's requirement:
//!
//! > *site s such that: quotaᵢˢ ≥ requiredᵢˢ for every resource i*
//!
//! This crate provides that accounting:
//!
//! * [`PolicyEngine`] — the registry of virtual organisations and users,
//!   each holding per-site [`QuotaAccount`]s for CPU-seconds and disk.
//! * [`PolicyEngine::feasible_sites`] — the eq. 4 filter applied before
//!   any scheduling strategy runs (Figure 7's experiment).
//! * Reserve / commit / release — quota is *reserved* when a job is
//!   planned, *committed* (charged at actual usage) when it completes and
//!   *released* (refunded) when it fails, so crashed jobs do not leak
//!   quota.

use serde::{Deserialize, Serialize};
use sphinx_data::SiteId;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a grid user (a "production manager" in the paper's §2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user{}", self.0)
    }
}

/// Identifier of a virtual organisation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VoId(pub u32);

impl fmt::Display for VoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vo{}", self.0)
    }
}

/// Resource amounts a job needs (or a quota grants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Requirement {
    /// CPU time, in seconds on the reference CPU.
    pub cpu_seconds: u64,
    /// Disk space, in MB.
    pub disk_mb: u64,
}

impl Requirement {
    /// A requirement.
    pub fn new(cpu_seconds: u64, disk_mb: u64) -> Self {
        Requirement {
            cpu_seconds,
            disk_mb,
        }
    }

    /// Component-wise `self + other`.
    pub fn plus(self, other: Requirement) -> Requirement {
        Requirement {
            cpu_seconds: self.cpu_seconds + other.cpu_seconds,
            disk_mb: self.disk_mb + other.disk_mb,
        }
    }

    /// Component-wise saturating `self - other`.
    pub fn minus(self, other: Requirement) -> Requirement {
        Requirement {
            cpu_seconds: self.cpu_seconds.saturating_sub(other.cpu_seconds),
            disk_mb: self.disk_mb.saturating_sub(other.disk_mb),
        }
    }

    /// True if every component of `self` covers `other`.
    pub fn covers(self, other: Requirement) -> bool {
        self.cpu_seconds >= other.cpu_seconds && self.disk_mb >= other.disk_mb
    }
}

/// One quota account: granted, used, reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QuotaAccount {
    /// Total allocation.
    pub granted: Requirement,
    /// Charged by completed jobs.
    pub used: Requirement,
    /// Held by planned-but-unfinished jobs.
    pub reserved: Requirement,
}

impl QuotaAccount {
    /// An account with the given grant.
    pub fn new(granted: Requirement) -> Self {
        QuotaAccount {
            granted,
            ..QuotaAccount::default()
        }
    }

    /// What is still available to new plans.
    pub fn remaining(&self) -> Requirement {
        self.granted.minus(self.used).minus(self.reserved)
    }
}

/// Why a policy operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The user is not registered.
    UnknownUser(UserId),
    /// The user has no allocation at this site at all.
    NoAllocation { user: UserId, site: SiteId },
    /// The remaining quota does not cover the requirement.
    InsufficientQuota {
        /// Who.
        user: UserId,
        /// Where.
        site: SiteId,
        /// What was left.
        remaining: Requirement,
        /// What was asked.
        required: Requirement,
    },
    /// Unknown reservation id (double commit/release).
    UnknownReservation(u64),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownUser(u) => write!(f, "unknown user {u}"),
            PolicyError::NoAllocation { user, site } => {
                write!(f, "{user} has no allocation at {site}")
            }
            PolicyError::InsufficientQuota {
                user,
                site,
                remaining,
                required,
            } => write!(
                f,
                "{user} at {site}: remaining {remaining:?} < required {required:?}"
            ),
            PolicyError::UnknownReservation(id) => write!(f, "unknown reservation {id}"),
        }
    }
}

impl std::error::Error for PolicyError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct UserPolicy {
    vo: VoId,
    priority: u32,
    quotas: BTreeMap<SiteId, QuotaAccount>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Reservation {
    user: UserId,
    site: SiteId,
    amount: Requirement,
}

/// The policy engine.
#[derive(Debug, Clone, Default)]
pub struct PolicyEngine {
    users: BTreeMap<UserId, UserPolicy>,
    vo_names: BTreeMap<VoId, String>,
    reservations: BTreeMap<u64, Reservation>,
    next_reservation: u64,
}

impl PolicyEngine {
    /// An empty engine (every feasibility check fails until users are
    /// registered).
    pub fn new() -> Self {
        PolicyEngine::default()
    }

    /// Register a virtual organisation.
    pub fn add_vo(&mut self, vo: VoId, name: impl Into<String>) {
        self.vo_names.insert(vo, name.into());
    }

    /// Register a user in a VO with a scheduling priority (higher = more
    /// important; strategies may use it for tie-breaking).
    pub fn add_user(&mut self, user: UserId, vo: VoId, priority: u32) {
        self.users.insert(
            user,
            UserPolicy {
                vo,
                priority,
                quotas: BTreeMap::new(),
            },
        );
    }

    /// Grant (or replace) the user's allocation at a site.
    pub fn grant(&mut self, user: UserId, site: SiteId, granted: Requirement) {
        if let Some(up) = self.users.get_mut(&user) {
            up.quotas.insert(site, QuotaAccount::new(granted));
        }
    }

    /// The user's VO, if registered.
    pub fn vo_of(&self, user: UserId) -> Option<VoId> {
        self.users.get(&user).map(|u| u.vo)
    }

    /// The user's priority, if registered.
    pub fn priority_of(&self, user: UserId) -> Option<u32> {
        self.users.get(&user).map(|u| u.priority)
    }

    /// The user's account at a site.
    pub fn account(&self, user: UserId, site: SiteId) -> Option<QuotaAccount> {
        self.users.get(&user)?.quotas.get(&site).copied()
    }

    /// Total charged usage (used + reserved) across every user at `site`.
    /// The sharded coordinator debits this against its per-site
    /// quota-lease ledger so cross-shard fairness is auditable from the
    /// database alone.
    pub fn site_usage(&self, site: SiteId) -> Requirement {
        self.users
            .values()
            .filter_map(|u| u.quotas.get(&site))
            .fold(Requirement::default(), |acc, q| {
                acc.plus(q.used).plus(q.reserved)
            })
    }

    /// Eq. 4: the subset of `sites` where the user's remaining quota
    /// covers `required`. A user unknown to the engine gets no sites; a
    /// site with no allocation is infeasible.
    pub fn feasible_sites(
        &self,
        user: UserId,
        required: Requirement,
        sites: &[SiteId],
    ) -> Vec<SiteId> {
        let Some(up) = self.users.get(&user) else {
            return Vec::new();
        };
        sites
            .iter()
            .copied()
            .filter(|site| {
                up.quotas
                    .get(site)
                    .is_some_and(|acct| acct.remaining().covers(required))
            })
            .collect()
    }

    /// Reserve quota for a planned job. Returns the reservation id.
    pub fn reserve(
        &mut self,
        user: UserId,
        site: SiteId,
        amount: Requirement,
    ) -> Result<u64, PolicyError> {
        let up = self
            .users
            .get_mut(&user)
            .ok_or(PolicyError::UnknownUser(user))?;
        let acct = up
            .quotas
            .get_mut(&site)
            .ok_or(PolicyError::NoAllocation { user, site })?;
        let remaining = acct.remaining();
        if !remaining.covers(amount) {
            return Err(PolicyError::InsufficientQuota {
                user,
                site,
                remaining,
                required: amount,
            });
        }
        acct.reserved = acct.reserved.plus(amount);
        let id = self.next_reservation;
        self.next_reservation += 1;
        self.reservations
            .insert(id, Reservation { user, site, amount });
        Ok(id)
    }

    /// The job completed: charge actual usage, release the reservation.
    /// Actual usage above the reservation is still charged (the job ran;
    /// the books must balance), which can push the account negative-ish —
    /// i.e. `remaining` saturates at zero and future plans are blocked.
    pub fn commit(&mut self, reservation: u64, actual: Requirement) -> Result<(), PolicyError> {
        let r = self
            .reservations
            .remove(&reservation)
            .ok_or(PolicyError::UnknownReservation(reservation))?;
        if let Some(acct) = self
            .users
            .get_mut(&r.user)
            .and_then(|u| u.quotas.get_mut(&r.site))
        {
            acct.reserved = acct.reserved.minus(r.amount);
            acct.used = acct.used.plus(actual);
        }
        Ok(())
    }

    /// The job failed or was cancelled: refund the whole reservation.
    pub fn release(&mut self, reservation: u64) -> Result<(), PolicyError> {
        let r = self
            .reservations
            .remove(&reservation)
            .ok_or(PolicyError::UnknownReservation(reservation))?;
        if let Some(acct) = self
            .users
            .get_mut(&r.user)
            .and_then(|u| u.quotas.get_mut(&r.site))
        {
            acct.reserved = acct.reserved.minus(r.amount);
        }
        Ok(())
    }

    /// Number of outstanding reservations.
    pub fn outstanding_reservations(&self) -> usize {
        self.reservations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine_with_user() -> PolicyEngine {
        let mut e = PolicyEngine::new();
        e.add_vo(VoId(0), "uscms");
        e.add_user(UserId(1), VoId(0), 10);
        e.grant(UserId(1), SiteId(0), Requirement::new(3600, 1000));
        e.grant(UserId(1), SiteId(1), Requirement::new(60, 10));
        e
    }

    #[test]
    fn feasibility_filters_by_remaining_quota() {
        let e = engine_with_user();
        let sites = [SiteId(0), SiteId(1), SiteId(2)];
        let need = Requirement::new(120, 100);
        // Site 0 has plenty; site 1 is too small; site 2 has no allocation.
        assert_eq!(e.feasible_sites(UserId(1), need, &sites), vec![SiteId(0)]);
    }

    #[test]
    fn unknown_user_gets_nothing() {
        let e = engine_with_user();
        assert!(e
            .feasible_sites(UserId(9), Requirement::default(), &[SiteId(0)])
            .is_empty());
    }

    #[test]
    fn reserve_blocks_concurrent_overcommit() {
        let mut e = engine_with_user();
        let need = Requirement::new(2000, 600);
        let _r1 = e.reserve(UserId(1), SiteId(0), need).unwrap();
        // Remaining is now 1600 cpu / 400 disk: a second identical
        // reservation must fail (eq. 4 applied against *remaining*).
        let err = e.reserve(UserId(1), SiteId(0), need).unwrap_err();
        assert!(matches!(err, PolicyError::InsufficientQuota { .. }));
        assert!(e.feasible_sites(UserId(1), need, &[SiteId(0)]).is_empty());
    }

    #[test]
    fn commit_charges_actual_usage() {
        let mut e = engine_with_user();
        let r = e
            .reserve(UserId(1), SiteId(0), Requirement::new(100, 50))
            .unwrap();
        e.commit(r, Requirement::new(80, 50)).unwrap();
        let acct = e.account(UserId(1), SiteId(0)).unwrap();
        assert_eq!(acct.used, Requirement::new(80, 50));
        assert_eq!(acct.reserved, Requirement::default());
        assert_eq!(acct.remaining(), Requirement::new(3520, 950));
        assert_eq!(e.outstanding_reservations(), 0);
    }

    #[test]
    fn site_usage_sums_used_and_reserved_across_users() {
        let mut e = engine_with_user();
        e.add_user(UserId(2), VoId(0), 5);
        e.grant(UserId(2), SiteId(0), Requirement::new(500, 200));
        let r1 = e
            .reserve(UserId(1), SiteId(0), Requirement::new(100, 50))
            .unwrap();
        let _r2 = e
            .reserve(UserId(2), SiteId(0), Requirement::new(30, 10))
            .unwrap();
        e.commit(r1, Requirement::new(80, 50)).unwrap();
        // User 1 contributes 80/50 used; user 2 contributes 30/10 reserved.
        assert_eq!(e.site_usage(SiteId(0)), Requirement::new(110, 60));
        // Other sites are untouched; unknown sites read as zero.
        assert_eq!(e.site_usage(SiteId(1)), Requirement::default());
        assert_eq!(e.site_usage(SiteId(9)), Requirement::default());
    }

    #[test]
    fn release_refunds_everything() {
        let mut e = engine_with_user();
        let before = e.account(UserId(1), SiteId(0)).unwrap();
        let r = e
            .reserve(UserId(1), SiteId(0), Requirement::new(100, 50))
            .unwrap();
        e.release(r).unwrap();
        assert_eq!(e.account(UserId(1), SiteId(0)).unwrap(), before);
    }

    #[test]
    fn double_commit_or_release_fails() {
        let mut e = engine_with_user();
        let r = e
            .reserve(UserId(1), SiteId(0), Requirement::new(1, 1))
            .unwrap();
        e.commit(r, Requirement::new(1, 1)).unwrap();
        assert!(matches!(
            e.commit(r, Requirement::default()),
            Err(PolicyError::UnknownReservation(_))
        ));
        assert!(matches!(
            e.release(r),
            Err(PolicyError::UnknownReservation(_))
        ));
    }

    #[test]
    fn reserve_at_unallocated_site_fails() {
        let mut e = engine_with_user();
        let err = e
            .reserve(UserId(1), SiteId(5), Requirement::new(1, 1))
            .unwrap_err();
        assert!(matches!(err, PolicyError::NoAllocation { .. }));
        let err = e
            .reserve(UserId(9), SiteId(0), Requirement::new(1, 1))
            .unwrap_err();
        assert!(matches!(err, PolicyError::UnknownUser(_)));
    }

    #[test]
    fn metadata_lookups() {
        let e = engine_with_user();
        assert_eq!(e.vo_of(UserId(1)), Some(VoId(0)));
        assert_eq!(e.priority_of(UserId(1)), Some(10));
        assert_eq!(e.vo_of(UserId(2)), None);
    }

    #[test]
    fn requirement_arithmetic() {
        let a = Requirement::new(10, 5);
        let b = Requirement::new(4, 9);
        assert_eq!(a.plus(b), Requirement::new(14, 14));
        assert_eq!(a.minus(b), Requirement::new(6, 0));
        assert!(a.covers(Requirement::new(10, 5)));
        assert!(!a.covers(b));
    }

    proptest! {
        /// A reserve followed by release is always a no-op on the account.
        #[test]
        fn prop_reserve_release_identity(cpu in 0u64..3600, disk in 0u64..1000) {
            let mut e = engine_with_user();
            let before = e.account(UserId(1), SiteId(0)).unwrap();
            if let Ok(r) = e.reserve(UserId(1), SiteId(0), Requirement::new(cpu, disk)) {
                e.release(r).unwrap();
            }
            prop_assert_eq!(e.account(UserId(1), SiteId(0)).unwrap(), before);
        }

        /// used + remaining + reserved always equals granted (given no
        /// over-commit), under random reserve/commit/release sequences.
        #[test]
        fn prop_books_balance(ops in proptest::collection::vec((0u8..3, 1u64..500, 1u64..200), 0..50)) {
            let mut e = PolicyEngine::new();
            e.add_user(UserId(1), VoId(0), 1);
            e.grant(UserId(1), SiteId(0), Requirement::new(100_000, 50_000));
            let mut live: Vec<u64> = Vec::new();
            for (op, cpu, disk) in ops {
                match op {
                    0 => {
                        if let Ok(r) = e.reserve(UserId(1), SiteId(0), Requirement::new(cpu, disk)) {
                            live.push(r);
                        }
                    }
                    1 => {
                        if let Some(r) = live.pop() {
                            // Commit at exactly the reserved amount keeps
                            // the invariant exact.
                            let amount = e.reservations[&r].amount;
                            e.commit(r, amount).unwrap();
                        }
                    }
                    _ => {
                        if let Some(r) = live.pop() {
                            e.release(r).unwrap();
                        }
                    }
                }
                let acct = e.account(UserId(1), SiteId(0)).unwrap();
                let total = acct.used.plus(acct.reserved).plus(acct.remaining());
                prop_assert_eq!(total, acct.granted);
            }
        }
    }
}
