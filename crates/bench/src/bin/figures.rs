//! Regenerate every figure of the paper (plus the DESIGN.md ablations).
//!
//! ```text
//! cargo run --release -p sphinx-bench --bin figures -- all
//! cargo run --release -p sphinx-bench --bin figures -- fig2 fig8
//! cargo run --release -p sphinx-bench --bin figures -- --quick all
//! cargo run --release -p sphinx-bench --bin figures -- --trials 5 fig3
//! ```
//!
//! Results are printed as tables and written to `results/<id>.json`.

use sphinx_bench::{
    aggregate, jobs_vs_speed_correlation, planner, render_site_table, render_svg_value_bars,
    render_table, run_trials, scale, shard, write_json, write_svg, Aggregate,
};
use sphinx_core::StrategyKind;
use sphinx_ops::OpsConfig;
use sphinx_policy::Requirement;
use sphinx_sim::Duration;
use sphinx_telemetry::{
    chrome_trace_json, prometheus_text, validate_prometheus, InMemorySink, JsonlSink, TraceEvent,
    TraceKind,
};
use sphinx_workloads::experiments::{
    ablate_burst, ablate_fault_density, ablate_staleness, fig2, fig345, fig6, fig7, fig8, qos,
    recovery, ExperimentParams, SeriesPoint,
};
use sphinx_workloads::{FaultPlan, Scenario};
use std::path::PathBuf;

struct Options {
    quick: bool,
    trials: usize,
    ids: Vec<String>,
    results_dir: PathBuf,
}

fn parse_args() -> Options {
    let mut quick = false;
    let mut trials = 3usize;
    let mut ids = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trials" => {
                trials = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--trials N");
            }
            id => ids.push(id.to_owned()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = vec![
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "ablate-staleness",
            "ablate-fault",
            "ablate-burst",
            "qos",
            "recovery",
            "telemetry",
            "ops",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
    }
    Options {
        quick,
        trials,
        ids,
        results_dir: PathBuf::from("results"),
    }
}

fn params(opts: &Options, seed: u64) -> ExperimentParams {
    if opts.quick {
        ExperimentParams {
            jobs_per_dag: 10,
            seed,
            full_catalog: true,
        }
    } else {
        ExperimentParams::paper(seed)
    }
}

fn seeds(opts: &Options) -> Vec<u64> {
    (0..opts.trials as u64).map(|i| 1000 + 7 * i).collect()
}

fn emit(opts: &Options, id: &str, title: &str, rows: &[Aggregate]) {
    print!("{}", render_table(title, rows));
    write_json(&opts.results_dir, id, &rows).expect("write results");
    write_svg(&opts.results_dir, id, title, rows).expect("write charts");
}

/// Compare a fresh planner sweep against the committed
/// `BENCH_planner.json` baseline: any size whose cached
/// `plan_cycle_mean_us` regressed by more than 25% fails the run.
fn planner_regressions(bench: &planner::PlannerBench) -> Vec<String> {
    let Ok(old) = std::fs::read_to_string("BENCH_planner.json") else {
        return Vec::new(); // no committed baseline yet
    };
    let Ok(baseline) = serde_json::from_str::<planner::PlannerBench>(&old) else {
        return vec!["BENCH_planner.json exists but does not parse".to_owned()];
    };
    let mut out = Vec::new();
    for point in &bench.points {
        let Some(base) = baseline.points.iter().find(|p| p.label == point.label) else {
            continue;
        };
        let new = point.cached.plan_cycle_mean_us;
        let old = base.cached.plan_cycle_mean_us;
        if old > 0.0 && new > old * 1.25 {
            out.push(format!(
                "{}: plan_cycle_mean_us {new:.1}us vs baseline {old:.1}us (+{:.0}%, limit 25%)",
                point.label,
                (new / old - 1.0) * 100.0
            ));
        }
    }
    out
}

/// Compare a fresh shard sweep against the committed `BENCH_shard.json`
/// baseline. Absolute microsecond means are machine- and load-dependent
/// (the plan cycles here are well under a millisecond), so the gate
/// compares the machine-independent shape instead: each 4-shard point's
/// per-shard plan-cycle mean *relative to the run's own single-shard
/// baseline*. A >25% regression of that ratio fails the run.
fn shard_regressions(bench: &shard::ShardBench) -> Vec<String> {
    let Ok(old) = std::fs::read_to_string("BENCH_shard.json") else {
        return Vec::new(); // no committed baseline yet
    };
    let Ok(baseline) = serde_json::from_str::<shard::ShardBench>(&old) else {
        return vec!["BENCH_shard.json exists but does not parse".to_owned()];
    };
    let relative_cost = |b: &shard::ShardBench, label: &str| -> Option<f64> {
        let single = b
            .points
            .iter()
            .filter(|p| p.shards == 1)
            .map(|p| p.plan_cycle_mean_us_per_shard)
            .find(|&m| m > 0.0)?;
        let point = b.points.iter().find(|p| p.label == label)?;
        Some(point.plan_cycle_mean_us_per_shard / single)
    };
    let mut out = Vec::new();
    for point in bench.points.iter().filter(|p| p.shards == 4) {
        let (Some(new), Some(old)) = (
            relative_cost(bench, &point.label),
            relative_cost(&baseline, &point.label),
        ) else {
            continue;
        };
        if old > 0.0 && new > old * 1.25 {
            out.push(format!(
                "{}: per-shard cost {new:.2}x of single-shard vs {old:.2}x committed (+{:.0}%, limit 25%)",
                point.label,
                (new / old - 1.0) * 100.0
            ));
        }
    }
    out
}

/// Committed artifact of the `ops` arm: how far ahead of the post-hoc
/// reliability flag the online black-hole detector fired on the seeded
/// scenario. Every field is sim-time-derived, so the file is
/// machine-independent and byte-stable across reruns.
#[derive(serde::Serialize, serde::Deserialize)]
struct OpsBench {
    seed: u64,
    window_ms: u64,
    k_windows: u32,
    alerts_total: usize,
    first_alert_ms: u64,
    first_flag_ms: u64,
    head_start_ms: u64,
}

/// The seeded black-hole scenario shared by the `ops` and `ops-smoke`
/// arms (mirrors `tests/ops_plane.rs`): round-robin keeps feeding the
/// hole, feedback is on so the post-hoc flag eventually lands, and the
/// live aggregator watches every planner tick.
fn ops_scenario(fast_path: bool) -> Scenario {
    Scenario::builder()
        .sites(sphinx_workloads::grid3::catalog_small())
        .dags(2, 8)
        .seed(1905)
        .strategy(StrategyKind::RoundRobin)
        .feedback(true)
        .timeout(Duration::from_mins(10))
        .faults(FaultPlan {
            black_holes: 1,
            flaky: 0,
            ..FaultPlan::default()
        })
        .horizon(Duration::from_secs(24 * 3600))
        .ops(OpsConfig::default())
        .ops_fast_path(fast_path)
        .build()
}

/// Run a scenario with an in-memory trace sink attached, returning the
/// serialised `OpsAlert` stream (one JSON line per alert) and the full
/// event capture.
fn run_ops_traced(scenario: &Scenario) -> (String, Vec<TraceEvent>) {
    let mut rt = scenario.build_runtime();
    let (sink, events) = InMemorySink::new();
    rt.telemetry().add_sink(Box::new(sink));
    let report = rt.run();
    assert!(report.finished, "{}", report.summary());
    let captured = events.lock().clone();
    let stream: Vec<String> = captured
        .iter()
        .filter(|e| e.kind == TraceKind::OpsAlert)
        .map(TraceEvent::to_json_line)
        .collect();
    (stream.join("\n"), captured)
}

/// Compare a fresh ops run against the committed `BENCH_ops.json`: the
/// detector's head start over the post-hoc flag must not shrink (the
/// sim is deterministic, so any drift is a behaviour change).
fn ops_regressions(bench: &OpsBench) -> Vec<String> {
    let Ok(old) = std::fs::read_to_string("BENCH_ops.json") else {
        return Vec::new(); // no committed baseline yet
    };
    let Ok(baseline) = serde_json::from_str::<OpsBench>(&old) else {
        return vec!["BENCH_ops.json exists but does not parse".to_owned()];
    };
    let mut out = Vec::new();
    if bench.head_start_ms < baseline.head_start_ms {
        out.push(format!(
            "black-hole detection head start shrank: {}ms vs {}ms committed",
            bench.head_start_ms, baseline.head_start_ms
        ));
    }
    out
}

fn main() {
    let opts = parse_args();
    let t0 = std::time::Instant::now(); // sphinx-lint: allow(wall-clock)
    for id in opts.ids.clone() {
        match id.as_str() {
            "fig2" => {
                let rows = run_trials(&seeds(&opts), |s| fig2(params(&opts, s)));
                emit(
                    &opts,
                    "fig2",
                    "Figure 2: effect of feedback (3 DAGs, faulty grid)",
                    &rows,
                );
            }
            "fig3" | "fig4" | "fig5" => {
                let dags = match id.as_str() {
                    "fig3" => 3,
                    "fig4" => 6,
                    _ => 12,
                };
                let rows = run_trials(&seeds(&opts), |s| fig345(params(&opts, s), dags));
                emit(
                    &opts,
                    &id,
                    &format!("Figure {}: strategy comparison ({dags} DAGs)", &id[3..]),
                    &rows,
                );
            }
            "fig6" => {
                // Figure 6 is per-site structure: single representative
                // trial, plus the correlation statistic over all trials.
                let all: Vec<Vec<SeriesPoint>> = seeds(&opts)
                    .iter()
                    .map(|&s| fig6(params(&opts, s)))
                    .collect();
                let representative = &all[0];
                for point in representative {
                    print!(
                        "{}",
                        render_site_table(&format!("Figure 6 ({})", point.label), point)
                    );
                }
                for (i, point) in representative.iter().enumerate() {
                    let rs: Vec<f64> = all
                        .iter()
                        .filter_map(|trial| jobs_vs_speed_correlation(&trial[i]))
                        .collect();
                    let mean = rs.iter().sum::<f64>() / rs.len().max(1) as f64;
                    println!(
                        "jobs-vs-completion-time correlation [{}]: {:.2} (negative = jobs follow fast sites)",
                        point.label, mean
                    );
                }
                write_json(&opts.results_dir, "fig6", &representative).expect("write results");
            }
            "fig7" => {
                // Tight enough to actually steer placement: each site can
                // host roughly 130 of the 1200 jobs' CPU-seconds.
                let quota = Requirement::new(8_000, 40_000);
                let rows = run_trials(&seeds(&opts), |s| fig7(params(&opts, s), quota));
                emit(
                    &opts,
                    "fig7",
                    "Figure 7: policy-constrained scheduling (12 DAGs, per-user quotas)",
                    &rows,
                );
            }
            "fig8" => {
                let rows = run_trials(&seeds(&opts), |s| fig8(params(&opts, s)));
                emit(
                    &opts,
                    "fig8",
                    "Figure 8: timeouts / reschedules per strategy (12 DAGs, faulty grid)",
                    &rows,
                );
            }
            "ablate-staleness" => {
                let rows = run_trials(&seeds(&opts), |s| ablate_staleness(params(&opts, s)));
                emit(
                    &opts,
                    "ablate-staleness",
                    "Ablation: queue-length strategy vs monitoring staleness (6 DAGs)",
                    &rows,
                );
            }
            "ablate-fault" => {
                let rows = run_trials(&seeds(&opts), |s| ablate_fault_density(params(&opts, s), 4));
                emit(
                    &opts,
                    "ablate-fault",
                    "Ablation: completion vs number of black-hole sites (3 DAGs)",
                    &rows,
                );
            }
            "ablate-burst" => {
                let rows = run_trials(&seeds(&opts), |s| ablate_burst(params(&opts, s)));
                emit(
                    &opts,
                    "ablate-burst",
                    "Ablation: strategies under bursty (campaign-wave) background load (6 DAGs)",
                    &rows,
                );
            }
            "qos" => {
                let rows = run_trials(&seeds(&opts), |s| qos(params(&opts, s)));
                emit(
                    &opts,
                    "qos",
                    "QoS extension: EDF deadline scheduling vs FIFO (12 DAGs, 3 urgent)",
                    &rows,
                );
                // Urgent-DAG completion times: the metric EDF optimises.
                let pts = qos(params(&opts, seeds(&opts)[0]));
                for p in &pts {
                    let n = p.report.dag_completion_secs.len();
                    let urgent_mean =
                        p.report.dag_completion_secs[n - 3..].iter().sum::<f64>() / 3.0;
                    println!(
                        "{:24} urgent-dag mean completion {:.0}s, deadlines met {}/{}",
                        p.label,
                        urgent_mean,
                        p.report.deadlines_met,
                        p.report.deadlines_met + p.report.deadlines_missed
                    );
                }
            }
            "recovery" => {
                let outcome = recovery(params(&opts, 1000), Duration::from_mins(8));
                println!(
                    "\n== Recovery: server crash at t=8min (mid-workload), WAL replay, resume"
                );
                println!(
                    "jobs finished before crash: {}",
                    outcome.finished_before_crash
                );
                println!("WAL entries replayed:       {}", outcome.wal_entries);
                println!(
                    "post-recovery completion:   finished={} jobs={} (+{} eliminated)",
                    outcome.report.finished,
                    outcome.report.jobs_completed,
                    outcome.report.jobs_eliminated
                );
                println!("summary: {}", outcome.report.summary());
                write_json(&opts.results_dir, "recovery", &outcome).expect("write results");
            }
            "telemetry" => {
                // One representative faulty-grid run with a JSONL trace
                // sink attached, plus the FSA dwell-time figure built
                // from the run report's TelemetrySnapshot.
                let p = params(&opts, seeds(&opts)[0]);
                let scenario = Scenario::builder()
                    .seed(p.seed)
                    .faults(FaultPlan::grid3_typical())
                    .dags(3, p.jobs_per_dag)
                    .build();
                let mut rt = scenario.build_runtime();
                std::fs::create_dir_all(&opts.results_dir).expect("results dir");
                let trace_path = opts.results_dir.join("telemetry_trace.jsonl");
                let file = std::fs::File::create(&trace_path).expect("trace file");
                rt.telemetry()
                    .add_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(file))));
                let report = rt.run();
                rt.telemetry().flush_sinks();
                let snap = &report.telemetry;
                println!("\n== Telemetry: faulty-grid trace (seed {})", p.seed);
                println!(
                    "trace events: {} recorded, {} dropped from the ring (the sink saw all)",
                    snap.trace_recorded, snap.trace_dropped
                );
                for (name, v) in &snap.counters {
                    println!("{name:<28} {v}");
                }
                let hits = snap
                    .counters
                    .get("plan.score_cache.hits")
                    .copied()
                    .unwrap_or(0);
                let misses = snap
                    .counters
                    .get("plan.score_cache.misses")
                    .copied()
                    .unwrap_or(0);
                if hits + misses > 0 {
                    println!(
                        "planner score cache: {:.1}% hit rate, scratch buffer reused {} cycles",
                        100.0 * hits as f64 / (hits + misses) as f64,
                        snap.counters
                            .get("plan.scratch.reused")
                            .copied()
                            .unwrap_or(0)
                    );
                }
                let dwell: Vec<(String, f64)> = snap
                    .histograms
                    .iter()
                    .filter(|(name, _)| name.starts_with("fsa.dwell_ms."))
                    .map(|(name, h)| (name["fsa.dwell_ms.".len()..].to_owned(), h.mean() / 1000.0))
                    .collect();
                let svg = render_svg_value_bars("Telemetry: mean FSA state dwell time (s)", &dwell);
                std::fs::write(opts.results_dir.join("telemetry_dwell.svg"), svg)
                    .expect("write chart");
                write_json(&opts.results_dir, "telemetry", snap).expect("write results");
                println!("trace written to {}", trace_path.display());

                // Standard exporters: a Perfetto-loadable Chrome trace of
                // the span forest and a Prometheus text exposition of the
                // snapshot (self-validated before it is written).
                // Dropped telemetry is lost evidence: the live ops plane
                // and the post-hoc analysis both read these buffers, so a
                // smoke run that overflows them fails instead of warning.
                if snap.trace_dropped > 0 {
                    eprintln!(
                        "regression: {} trace events dropped from the ring (raise trace_capacity)",
                        snap.trace_dropped
                    );
                    std::process::exit(1);
                }
                if snap.spans_dropped > 0 {
                    eprintln!(
                        "regression: {} finished spans evicted (raise span_capacity)",
                        snap.spans_dropped
                    );
                    std::process::exit(1);
                }
                let chrome = chrome_trace_json(&rt.telemetry().spans());
                let chrome_path = opts.results_dir.join("trace_chrome.json");
                std::fs::write(&chrome_path, chrome).expect("write chrome trace");
                println!(
                    "chrome trace written to {} (open in ui.perfetto.dev)",
                    chrome_path.display()
                );
                let prom = prometheus_text(snap);
                if let Err(e) = validate_prometheus(&prom) {
                    eprintln!("warning: prometheus exposition failed validation: {e}");
                }
                let prom_path = opts.results_dir.join("metrics.prom");
                std::fs::write(&prom_path, prom).expect("write prometheus text");
                println!("prometheus metrics written to {}", prom_path.display());

                // Critical-path report: why each DAG finished when it did.
                let analysis = &report.analysis;
                println!(
                    "spans: {} total, {} live at exit, {} dropped",
                    analysis.spans_total, analysis.spans_live, analysis.spans_dropped
                );
                for path in &analysis.critical_paths {
                    println!(
                        "dag {}: makespan {:.0}s, critical path {:.0}s across {} jobs: {:?}",
                        path.dag,
                        path.makespan_ms as f64 / 1000.0,
                        path.path_ms as f64 / 1000.0,
                        path.jobs.len(),
                        path.jobs
                    );
                }
                for blame in analysis.slowest_jobs.iter().take(5) {
                    println!(
                        "slow job {} (dag {}): {:.0}s over {} attempt(s), blame {}",
                        blame.job,
                        blame.dag,
                        blame.total_ms as f64 / 1000.0,
                        blame.attempts,
                        blame.blame
                    );
                }
            }
            "scale" => {
                // Storage hot-path sweep: baseline (full-table decode) vs
                // indexed + cached + auto-checkpointed, 15→120 sites.
                let sizes: &[scale::SizeSpec] = if opts.quick {
                    &scale::SIZES[..1]
                } else {
                    &scale::SIZES
                };
                let points: Vec<scale::SizePoint> = sizes
                    .iter()
                    .map(|size| {
                        eprintln!("[scale] running {} ...", size.label);
                        scale::run_size(size, seeds(&opts)[0])
                    })
                    .collect();
                print!("{}", scale::render_scale_table(&points));
                write_json(&opts.results_dir, "scale", &points).expect("write results");
                // The committed before/after artifact lives at the repo
                // root so CI can diff it without digging into results/.
                let json = serde_json::to_string_pretty(&points).expect("scale serialize");
                std::fs::write("BENCH_scale.json", json).expect("write BENCH_scale.json");
                println!("scale sweep written to BENCH_scale.json");
            }
            "planner" => {
                // Planner hot-path sweep: site scoring with the per-cycle
                // cache off (reference) vs on (default), plus the
                // deterministic multi-seed parallel runner timing.
                let sizes: &[scale::SizeSpec] = if opts.quick {
                    &scale::SIZES[..1]
                } else {
                    &scale::SIZES
                };
                let points: Vec<planner::PlannerSizePoint> = sizes
                    .iter()
                    .map(|size| {
                        eprintln!("[planner] running {} ...", size.label);
                        planner::run_size(size, seeds(&opts)[0])
                    })
                    .collect();
                // The wall-clock speedup criterion needs enough seeds to
                // keep every worker busy; sweep at least 4.
                let sweep_seeds: Vec<u64> = (0..opts.trials.max(4) as u64)
                    .map(|i| 1000 + 7 * i)
                    .collect();
                eprintln!("[planner] timing {}-seed sweep ...", sweep_seeds.len());
                let sweep = planner::run_sweep_timing(&scale::SIZES[0], &sweep_seeds);
                let bench = planner::PlannerBench { points, sweep };
                print!("{}", planner::render_planner_table(&bench));
                // Regression gate: compare against the committed baseline
                // before overwriting it.
                let regressions = planner_regressions(&bench);
                write_json(&opts.results_dir, "planner", &bench).expect("write results");
                let json = serde_json::to_string_pretty(&bench).expect("planner serialize");
                std::fs::write("BENCH_planner.json", json).expect("write BENCH_planner.json");
                println!("planner sweep written to BENCH_planner.json");
                if !regressions.is_empty() {
                    for r in &regressions {
                        eprintln!("regression: {r}");
                    }
                    std::process::exit(1);
                }
            }
            "shard" => {
                // Sharded-runtime sweep: planner-cycle cost as the DAG
                // count grows 10× across 1→8 shards on a fixed grid.
                let sizes: &[shard::ShardSizeSpec] = if opts.quick {
                    &[shard::SIZES[0], shard::SIZES[2]]
                } else {
                    &shard::SIZES
                };
                let bench = shard::run_sweep(sizes, seeds(&opts)[0]);
                print!("{}", shard::render_shard_table(&bench));
                let regressions = shard_regressions(&bench);
                write_json(&opts.results_dir, "shard", &bench).expect("write results");
                let json = serde_json::to_string_pretty(&bench).expect("shard serialize");
                std::fs::write("BENCH_shard.json", json).expect("write BENCH_shard.json");
                println!("shard sweep written to BENCH_shard.json");
                if bench.mean_spread > 2.0 {
                    eprintln!(
                        "regression: per-shard plan-cycle mean spread {:.2}x exceeds the 2x flat-scaling budget",
                        bench.mean_spread
                    );
                    std::process::exit(1);
                }
                if bench.points.iter().any(|p| !p.matches_unsharded) {
                    eprintln!("regression: sharded schedule diverged from the unsharded runtime");
                    std::process::exit(1);
                }
                if !regressions.is_empty() {
                    for r in &regressions {
                        eprintln!("regression: {r}");
                    }
                    std::process::exit(1);
                }
            }
            "ops" => {
                // Live ops plane: the online black-hole detector vs the
                // post-hoc reliability flag on a seeded black-hole run,
                // executed twice to prove the alert stream is
                // byte-identical (the aggregator lives inside the sim
                // loop, so any nondeterminism would show up here first).
                let ops_config = OpsConfig::default();
                let mut regressions = Vec::new();
                let (stream_a, events) = run_ops_traced(&ops_scenario(false));
                let (stream_b, _) = run_ops_traced(&ops_scenario(false));
                println!("\n== Live ops plane: black-hole detection lead time (seed 1905)");
                if stream_a.is_empty() {
                    regressions.push("no OpsAlert events on the black-hole scenario".to_owned());
                }
                if stream_a.as_bytes() != stream_b.as_bytes() {
                    regressions.push("OpsAlert stream differs between identical reruns".to_owned());
                }
                let first_alert = events
                    .iter()
                    .find(|e| e.kind == TraceKind::OpsAlert && e.detail.starts_with("black_hole"));
                let first_flag = first_alert.and_then(|alert| {
                    events
                        .iter()
                        .find(|e| e.kind == TraceKind::SiteFlagged && e.site == alert.site)
                });
                match (first_alert, first_flag) {
                    (Some(alert), Some(flag)) => {
                        let head_start = flag.sim_time.since(alert.sim_time);
                        println!(
                            "online alert at {}, post-hoc flag at {}: head start {}",
                            alert.sim_time, flag.sim_time, head_start
                        );
                        if head_start.as_millis() == 0 {
                            regressions
                                .push("online alert did not beat the post-hoc flag".to_owned());
                        }
                        let alerts_total = stream_a.lines().count();
                        let bench = OpsBench {
                            seed: 1905,
                            window_ms: ops_config.window.as_millis(),
                            k_windows: ops_config.k_windows,
                            alerts_total,
                            first_alert_ms: alert.sim_time.as_millis(),
                            first_flag_ms: flag.sim_time.as_millis(),
                            head_start_ms: head_start.as_millis(),
                        };
                        regressions.extend(ops_regressions(&bench));
                        write_json(&opts.results_dir, "ops", &bench).expect("write results");
                        std::fs::create_dir_all(&opts.results_dir).expect("results dir");
                        std::fs::write(opts.results_dir.join("ops_alerts.jsonl"), &stream_a)
                            .expect("write alert stream");
                        let json = serde_json::to_string_pretty(&bench).expect("ops serialize");
                        std::fs::write("BENCH_ops.json", json).expect("write BENCH_ops.json");
                        println!(
                            "ops lead-time written to BENCH_ops.json ({alerts_total} alerts in results/ops_alerts.jsonl)"
                        );
                    }
                    (Some(_), None) => regressions
                        .push("no post-hoc SiteFlagged event for the alerted site".to_owned()),
                    (None, _) => regressions
                        .push("no black_hole OpsAlert on the black-hole scenario".to_owned()),
                }
                if !regressions.is_empty() {
                    for r in &regressions {
                        eprintln!("regression: {r}");
                    }
                    std::process::exit(1);
                }
            }
            "ops-smoke" => {
                // End-to-end check of the HTTP ops endpoint: run the
                // seeded scenario with the server bound to an ephemeral
                // localhost port, then fetch the three routes exactly as
                // an operator's dashboard would and persist /metrics for
                // the CI `validate-prom` step.
                use std::io::{Read, Write};
                let scenario = ops_scenario(false);
                let mut rt = scenario.build_runtime();
                let shared = rt.ops_snapshot_handle().expect("ops plane enabled");
                let telemetry = std::sync::Arc::clone(rt.telemetry());
                let mut server =
                    sphinx_ops::http::OpsServer::serve("127.0.0.1:0", shared, telemetry)
                        .expect("bind ops endpoint");
                let addr = server.addr();
                let report = rt.run();
                println!("\n== Ops endpoint smoke: serving on http://{addr}");
                println!("run finished: {}", report.summary());
                let fetch = |path: &str| -> std::io::Result<(String, String)> {
                    let mut stream = std::net::TcpStream::connect(addr)?;
                    write!(
                        stream,
                        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
                    )?;
                    let mut raw = Vec::new();
                    stream.read_to_end(&mut raw)?;
                    let text = String::from_utf8_lossy(&raw);
                    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((&text, ""));
                    let status = head.lines().next().unwrap_or("").to_owned();
                    Ok((status, body.to_owned()))
                };
                let mut failures = Vec::new();
                match fetch("/health") {
                    Ok((status, body)) if status.contains("200") && body == "ok\n" => {
                        println!("/health   {status}");
                    }
                    Ok((status, body)) => {
                        failures.push(format!("/health returned `{status}` body {body:?}"));
                    }
                    Err(e) => failures.push(format!("/health fetch failed: {e}")),
                }
                match fetch("/snapshot") {
                    Ok((status, body)) if status.contains("200") => {
                        match serde_json::from_str::<serde_json::Value>(&body) {
                            Ok(snap) => {
                                let sites = snap
                                    .get("sites")
                                    .and_then(serde_json::Value::as_array)
                                    .map(Vec::len)
                                    .unwrap_or(0);
                                let alerts = snap
                                    .get("alerts_total")
                                    .and_then(serde_json::Value::as_u64)
                                    .unwrap_or(0);
                                println!("/snapshot {status} ({sites} sites, {alerts} alerts)");
                                if sites == 0 {
                                    failures
                                        .push("/snapshot has no per-site health rows".to_owned());
                                }
                            }
                            Err(e) => failures.push(format!("/snapshot is not JSON: {e}")),
                        }
                    }
                    Ok((status, _)) => failures.push(format!("/snapshot returned `{status}`")),
                    Err(e) => failures.push(format!("/snapshot fetch failed: {e}")),
                }
                match fetch("/metrics") {
                    Ok((status, body)) if status.contains("200") => {
                        if let Err(e) = validate_prometheus(&body) {
                            failures.push(format!("/metrics failed validation: {e}"));
                        }
                        std::fs::create_dir_all(&opts.results_dir).expect("results dir");
                        let prom_path = opts.results_dir.join("metrics_ops.prom");
                        std::fs::write(&prom_path, &body).expect("write ops metrics");
                        println!(
                            "/metrics  {status} ({} lines, written to {})",
                            body.lines().count(),
                            prom_path.display()
                        );
                    }
                    Ok((status, _)) => failures.push(format!("/metrics returned `{status}`")),
                    Err(e) => failures.push(format!("/metrics fetch failed: {e}")),
                }
                server.stop();
                if !failures.is_empty() {
                    for f in &failures {
                        eprintln!("regression: {f}");
                    }
                    std::process::exit(1);
                }
            }
            other => eprintln!("unknown experiment id `{other}` (skipped)"),
        }
    }
    // Keep the aggregate helper exercised even when ids filter everything.
    let _ = aggregate(&[]);
    eprintln!("\n[done in {:.1}s]", t0.elapsed().as_secs_f64());
}
