//! Scale benchmark: storage hot-path cost as the grid and workload grow.
//!
//! Runs the same seeded scenario twice per size — once over a database
//! with every storage optimisation disabled ([`DbConfig::baseline`]:
//! full-table decode on every planner query, no decoded-row cache, no
//! automatic checkpointing) and once with the defaults (secondary
//! indexes + cache + auto-checkpoint) — and reports, per configuration:
//!
//! * planner-cycle latency (the `wall.plan_cycle_us` histogram),
//! * rows materialized vs. rows actually serde-decoded,
//! * WAL size (lines and bytes) at the end of the run,
//! * wall-clock time to replay the log into a recovered database.
//!
//! The output is machine-readable (`BENCH_scale.json`) so CI can archive
//! before/after numbers.

use serde::{Deserialize, Serialize};
use sphinx_db::{Database, DbConfig, MemWal, Wal};
use sphinx_grid::SiteSpec;
use sphinx_workloads::{grid3, Scenario};
use std::sync::Arc;

/// One grid/workload size of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SizeSpec {
    /// Label used in tables and JSON.
    pub label: &'static str,
    /// Site count (the Grid3 catalog pattern, cycled).
    pub sites: u32,
    /// Number of DAGs submitted.
    pub dags: u32,
    /// Jobs per DAG.
    pub jobs_per_dag: u32,
}

impl SizeSpec {
    /// Total job count of this size.
    pub fn jobs(&self) -> u32 {
        self.dags * self.jobs_per_dag
    }
}

/// The sweep: 15 → 120 sites, 1k → 10k jobs.
pub const SIZES: [SizeSpec; 4] = [
    SizeSpec {
        label: "15-sites-1k-jobs",
        sites: 15,
        dags: 20,
        jobs_per_dag: 50,
    },
    SizeSpec {
        label: "30-sites-2.5k-jobs",
        sites: 30,
        dags: 50,
        jobs_per_dag: 50,
    },
    SizeSpec {
        label: "60-sites-5k-jobs",
        sites: 60,
        dags: 100,
        jobs_per_dag: 50,
    },
    SizeSpec {
        label: "120-sites-10k-jobs",
        sites: 120,
        dags: 200,
        jobs_per_dag: 50,
    },
];

/// A catalog of `n` healthy sites: the Grid3 pattern cycled with fresh
/// ids (and background load off, so the sweep measures storage cost, not
/// contention noise).
pub fn scaled_catalog(n: u32) -> Vec<SiteSpec> {
    let pattern = grid3::catalog_with_background(false);
    (0..n)
        .map(|i| {
            let proto = &pattern[i as usize % pattern.len()];
            let mut site = proto.clone();
            site.id = sphinx_data::SiteId(i);
            if i as usize >= pattern.len() {
                site.name = format!("{}-{}", proto.name, i as usize / pattern.len());
            }
            site
        })
        .collect()
}

/// Metrics from one run of one configuration at one size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMetrics {
    /// `"baseline"` (no indexes, no cache, no auto-checkpoint) or
    /// `"indexed"` (the defaults).
    pub config: String,
    /// Jobs the scheduler completed.
    pub jobs_completed: u64,
    /// Whether every DAG finished before the horizon.
    pub finished: bool,
    /// Wall-clock seconds for the whole simulated run.
    pub run_secs: f64,
    /// Planner cycles observed by the latency histogram.
    pub plan_cycles: u64,
    /// Mean planner-cycle latency, microseconds.
    pub plan_cycle_mean_us: f64,
    /// Worst planner-cycle latency, microseconds.
    pub plan_cycle_max_us: f64,
    /// Rows materialized by `get`/`scan*`.
    pub rows_read: u64,
    /// Rows that required a serde decode.
    pub rows_decoded: u64,
    /// Reads served from the decoded-row cache.
    pub cache_hits: u64,
    /// Reads that populated the cache.
    pub cache_misses: u64,
    /// Log lines at end of run.
    pub wal_lines: u64,
    /// Log bytes at end of run (lines + newlines).
    pub wal_bytes: u64,
    /// Checkpoint compactions over the run.
    pub wal_rewrites: u64,
    /// Entries replayed when recovering from the final log.
    pub recovery_replayed: u64,
    /// Wall-clock microseconds to replay the final log.
    pub recovery_us: u64,
}

/// Both configurations at one size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizePoint {
    /// Size label.
    pub label: String,
    /// Site count.
    pub sites: u32,
    /// Total jobs submitted.
    pub jobs: u32,
    /// Full-table-decode storage (`DbConfig::baseline()`).
    pub baseline: ConfigMetrics,
    /// Indexed + cached + auto-checkpointed storage (the defaults).
    pub indexed: ConfigMetrics,
}

fn run_case(size: &SizeSpec, seed: u64, config_label: &str, db_config: DbConfig) -> ConfigMetrics {
    let scenario = Scenario::builder()
        .sites(scaled_catalog(size.sites))
        .dags(size.dags, size.jobs_per_dag)
        .seed(seed)
        .wall_clock_telemetry(true)
        .build();
    let wal = MemWal::shared();
    let db = Arc::new(Database::with_wal_and_config(
        Box::new(wal.clone()),
        db_config,
    ));
    let mut rt = scenario.build_runtime_with_db(Arc::clone(&db));
    let t0 = std::time::Instant::now(); // sphinx-lint: allow(wall-clock)
    let report = rt.run();
    let run_secs = t0.elapsed().as_secs_f64();

    let snapshot = rt.telemetry().snapshot();
    let plan_hist = snapshot.histograms.get("wall.plan_cycle_us");
    let stats = db.read_stats();
    let lines = wal.read_all().expect("in-memory log reads");
    let wal_bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();

    let t1 = std::time::Instant::now(); // sphinx-lint: allow(wall-clock)
    let recovered =
        Database::recover_with_config(Box::new(wal.clone()), db_config).expect("log replays");
    let recovery_us = t1.elapsed().as_micros() as u64;

    ConfigMetrics {
        config: config_label.to_owned(),
        jobs_completed: report.jobs_completed as u64,
        finished: report.finished,
        run_secs,
        plan_cycles: plan_hist.map_or(0, |h| h.count),
        plan_cycle_mean_us: plan_hist.map_or(0.0, |h| h.mean()),
        plan_cycle_max_us: plan_hist.map_or(0.0, |h| h.max),
        rows_read: stats.rows_read,
        rows_decoded: stats.rows_decoded,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        wal_lines: lines.len() as u64,
        wal_bytes,
        wal_rewrites: snapshot.counters.get("wal.rewrites").copied().unwrap_or(0),
        recovery_replayed: recovered.replayed(),
        recovery_us,
    }
}

/// Run one size with both storage configurations.
pub fn run_size(size: &SizeSpec, seed: u64) -> SizePoint {
    let baseline = run_case(size, seed, "baseline", DbConfig::baseline());
    let indexed = run_case(size, seed, "indexed", DbConfig::default());
    SizePoint {
        label: size.label.to_owned(),
        sites: size.sites,
        jobs: size.jobs(),
        baseline,
        indexed,
    }
}

/// Render the sweep as a comparison table.
pub fn render_scale_table(points: &[SizePoint]) -> String {
    let mut out = String::new();
    out.push_str("\n== scale — storage hot path, baseline vs indexed\n");
    out.push_str(&format!(
        "{:<22} {:<9} {:>11} {:>11} {:>13} {:>13} {:>10} {:>12}\n",
        "size",
        "config",
        "cycle (us)",
        "max (us)",
        "rows read",
        "decoded",
        "wal lines",
        "replay (us)"
    ));
    for p in points {
        for m in [&p.baseline, &p.indexed] {
            out.push_str(&format!(
                "{:<22} {:<9} {:>11.1} {:>11.0} {:>13} {:>13} {:>10} {:>12}\n",
                p.label,
                m.config,
                m.plan_cycle_mean_us,
                m.plan_cycle_max_us,
                m.rows_read,
                m.rows_decoded,
                m.wal_lines,
                m.recovery_us,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_catalog_has_unique_ids_and_pattern_shapes() {
        let sites = scaled_catalog(37);
        assert_eq!(sites.len(), 37);
        let pattern = grid3::catalog_with_background(false);
        for (i, site) in sites.iter().enumerate() {
            assert_eq!(site.id.0 as usize, i);
            let proto = &pattern[i % pattern.len()];
            assert_eq!(site.cpus, proto.cpus);
            assert_eq!(site.cpu_speed, proto.cpu_speed);
        }
        let mut names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 37, "names must stay unique");
    }

    #[test]
    fn tiny_sweep_point_runs_both_configs_to_the_same_outcome() {
        let size = SizeSpec {
            label: "tiny",
            sites: 4,
            dags: 2,
            jobs_per_dag: 8,
        };
        let point = run_size(&size, 3);
        assert!(point.baseline.finished && point.indexed.finished);
        assert_eq!(
            point.baseline.jobs_completed, point.indexed.jobs_completed,
            "storage configuration must not change the schedule"
        );
        assert!(
            point.indexed.rows_decoded < point.baseline.rows_decoded,
            "indexes + cache must decode fewer rows ({} vs {})",
            point.indexed.rows_decoded,
            point.baseline.rows_decoded
        );
        assert!(point.indexed.cache_hits > 0);
        let table = render_scale_table(&[point]);
        assert!(table.contains("tiny"));
    }
}
