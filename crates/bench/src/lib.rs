//! Shared machinery for the figure-regeneration harness.
//!
//! The `figures` binary runs every experiment of the paper at paper scale
//! (multiple seeds fanned out across OS threads by [`parallel_map`]),
//! aggregates the runs, prints the tables and writes `results/<id>.json`.
//! This library holds the aggregation and formatting so integration tests
//! can exercise it.

use serde::{Deserialize, Serialize};
use sphinx_workloads::experiments::SeriesPoint;
use std::path::Path;

pub mod planner;
pub mod scale;
pub mod shard;

/// Map `f` over `items` on `available_parallelism` scoped worker threads,
/// returning results in **input order** regardless of which worker finished
/// first or in what interleaving.
///
/// Determinism argument: workers pull indices from a shared atomic counter
/// and tag each result with the index it came from; the merge places
/// results by tag. Thread scheduling decides only *who* computes an item,
/// never *what* is computed (each `f(&items[i])` sees the same immutable
/// input) nor *where* the result lands. So the output is byte-identical to
/// `items.iter().map(f).collect()` whenever `f` itself is deterministic —
/// which every scenario run is (seeded, no wall-clock in the trace).
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

/// One row of an aggregated comparison table: the across-trial mean of the
/// metrics the paper's figures plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Configuration label.
    pub label: String,
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean of average DAG completion times, seconds.
    pub avg_dag_secs: f64,
    /// Mean of average job execution times, seconds.
    pub avg_exec_secs: f64,
    /// Mean of average job idle (queue) times, seconds.
    pub avg_idle_secs: f64,
    /// Mean timeout count.
    pub timeouts: f64,
    /// Mean held/killed reschedule count.
    pub holds: f64,
    /// Mean completed job count.
    pub jobs_completed: f64,
    /// True if every trial finished before its horizon.
    pub all_finished: bool,
}

/// Run `runner` once per seed (in parallel) and aggregate matching labels.
pub fn run_trials(
    seeds: &[u64],
    runner: impl Fn(u64) -> Vec<SeriesPoint> + Sync,
) -> Vec<Aggregate> {
    let trials: Vec<Vec<SeriesPoint>> = parallel_map(seeds, |&s| runner(s));
    aggregate(&trials)
}

/// Fold per-trial series into per-label aggregates. Labels are taken from
/// the first trial; every trial must produce the same label sequence.
pub fn aggregate(trials: &[Vec<SeriesPoint>]) -> Vec<Aggregate> {
    let Some(first) = trials.first() else {
        return Vec::new();
    };
    first
        .iter()
        .enumerate()
        .map(|(i, point)| {
            let runs: Vec<&SeriesPoint> = trials
                .iter()
                .map(|t| {
                    let p = &t[i];
                    assert_eq!(
                        p.label, point.label,
                        "trials must produce identical label sequences"
                    );
                    p
                })
                .collect();
            let n = runs.len() as f64;
            let mean = |f: &dyn Fn(&SeriesPoint) -> f64| -> f64 {
                runs.iter().map(|p| f(p)).sum::<f64>() / n
            };
            Aggregate {
                label: point.label.clone(),
                trials: runs.len(),
                avg_dag_secs: mean(&|p| p.report.avg_dag_completion_secs),
                avg_exec_secs: mean(&|p| p.report.avg_exec_secs),
                avg_idle_secs: mean(&|p| p.report.avg_idle_secs),
                timeouts: mean(&|p| p.report.timeouts as f64),
                holds: mean(&|p| p.report.holds as f64),
                jobs_completed: mean(&|p| p.report.jobs_completed as f64),
                all_finished: runs.iter().all(|p| p.report.finished),
            }
        })
        .collect()
}

/// Render an aggregate table, figure-style.
pub fn render_table(title: &str, rows: &[Aggregate]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title}\n"));
    out.push_str(&format!(
        "{:<34} {:>12} {:>10} {:>10} {:>9} {:>7} {:>6}\n",
        "configuration", "avg dag (s)", "exec (s)", "idle (s)", "timeouts", "holds", "done"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>12.0} {:>10.1} {:>10.1} {:>9.1} {:>7.1} {:>6}\n",
            r.label,
            r.avg_dag_secs,
            r.avg_exec_secs,
            r.avg_idle_secs,
            r.timeouts,
            r.holds,
            if r.all_finished { "yes" } else { "NO" },
        ));
    }
    out
}

/// Render the Figure 6 per-site table for one strategy's (single-trial)
/// report.
pub fn render_site_table(title: &str, point: &SeriesPoint) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} — site-wise distribution\n"));
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>14}\n",
        "site", "completed", "cancelled", "avg comp (s)"
    ));
    for s in &point.report.sites {
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>14}\n",
            s.name,
            s.completed,
            s.cancelled,
            s.avg_completion_secs
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".to_owned()),
        ));
    }
    out
}

/// Write any serialisable value as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(dir: &Path, id: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(value).expect("results serialize");
    std::fs::write(path, json)
}

/// Render a horizontal bar chart (SVG) of one metric across
/// configurations — the visual twin of the paper's bar figures.
pub fn render_svg_bars(
    title: &str,
    rows: &[Aggregate],
    metric: impl Fn(&Aggregate) -> f64,
) -> String {
    let pairs: Vec<(String, f64)> = rows.iter().map(|r| (r.label.clone(), metric(r))).collect();
    render_svg_value_bars(title, &pairs)
}

/// Render a horizontal bar chart from pre-computed `(label, value)` pairs
/// — used for telemetry metrics that are not per-configuration aggregates.
pub fn render_svg_value_bars(title: &str, rows: &[(String, f64)]) -> String {
    let width = 760.0;
    let bar_h = 26.0;
    let gap = 10.0;
    let left = 250.0;
    let top = 48.0;
    let height = top + rows.len() as f64 * (bar_h + gap) + 20.0;
    let max = rows.iter().map(|r| r.1).fold(1e-9, f64::max);
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\"          font-family=\"sans-serif\" font-size=\"13\">\n"
    ));
    svg.push_str(&format!(
        "<text x=\"16\" y=\"26\" font-size=\"16\" font-weight=\"bold\">{}</text>\n",
        title.replace('&', "&amp;").replace('<', "&lt;")
    ));
    for (i, (label, v)) in rows.iter().enumerate() {
        let y = top + i as f64 * (bar_h + gap);
        let v = *v;
        let w = (v / max) * (width - left - 90.0);
        let label = label.replace('&', "&amp;").replace('<', "&lt;");
        svg.push_str(&format!(
            "<text x=\"{:.0}\" y=\"{:.0}\" text-anchor=\"end\">{label}</text>\n",
            left - 8.0,
            y + bar_h * 0.7
        ));
        svg.push_str(&format!(
            "<rect x=\"{left}\" y=\"{y:.0}\" width=\"{w:.1}\" height=\"{bar_h}\"              fill=\"#4878a8\" />\n"
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.0}\">{v:.0}</text>\n",
            left + w + 6.0,
            y + bar_h * 0.7
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Write an SVG bar chart of average DAG completion (and a second one of
/// timeout counts) for one experiment id.
pub fn write_svg(dir: &Path, id: &str, title: &str, rows: &[Aggregate]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let svg = render_svg_bars(&format!("{title} — avg DAG completion (s)"), rows, |r| {
        r.avg_dag_secs
    });
    std::fs::write(dir.join(format!("{id}_avg_dag.svg")), svg)?;
    let svg = render_svg_bars(&format!("{title} — timeouts"), rows, |r| r.timeouts);
    std::fs::write(dir.join(format!("{id}_timeouts.svg")), svg)
}

/// Weighted rank correlation between a site's completed-job count and its
/// average completion time — the statistic behind Figure 6's claim that
/// the completion-time strategy sends more jobs to faster sites
/// (noticeably negative) while number-of-CPUs does not.
pub fn jobs_vs_speed_correlation(point: &SeriesPoint) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = point
        .report
        .sites
        .iter()
        .filter_map(|s| s.avg_completion_secs.map(|avg| (s.completed as f64, avg)))
        .collect();
    if pairs.len() < 3 {
        return None;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = pairs
        .iter()
        .map(|p| (p.0 - mean_x) * (p.1 - mean_y))
        .sum::<f64>();
    let var_x: f64 = pairs.iter().map(|p| (p.0 - mean_x).powi(2)).sum::<f64>();
    let var_y: f64 = pairs.iter().map(|p| (p.1 - mean_y).powi(2)).sum::<f64>();
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sphinx_core::report::{RunReport, SiteOutcome};
    use sphinx_data::SiteId;

    fn report(avg_dag: f64, timeouts: u64) -> RunReport {
        RunReport {
            strategy: "x".into(),
            feedback: true,
            policy: false,
            seed: 0,
            finished: true,
            makespan_secs: 100.0,
            dags: 1,
            avg_dag_completion_secs: avg_dag,
            dag_completion_secs: vec![avg_dag],
            jobs_completed: 10,
            jobs_eliminated: 0,
            avg_exec_secs: 60.0,
            avg_idle_secs: 30.0,
            plans: 10,
            timeouts,
            holds: 0,
            deadlines_met: 0,
            deadlines_missed: 0,
            sites: vec![],
            telemetry: Default::default(),
            analysis: Default::default(),
        }
    }

    fn point(label: &str, avg_dag: f64, timeouts: u64) -> SeriesPoint {
        SeriesPoint {
            label: label.into(),
            report: report(avg_dag, timeouts),
        }
    }

    #[test]
    fn aggregate_means_across_trials() {
        let trials = vec![
            vec![point("a", 100.0, 2), point("b", 300.0, 10)],
            vec![point("a", 200.0, 4), point("b", 500.0, 20)],
        ];
        let agg = aggregate(&trials);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].label, "a");
        assert_eq!(agg[0].trials, 2);
        assert!((agg[0].avg_dag_secs - 150.0).abs() < 1e-9);
        assert!((agg[1].timeouts - 15.0).abs() < 1e-9);
        assert!(agg[0].all_finished);
    }

    #[test]
    fn aggregate_empty_is_empty() {
        assert!(aggregate(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "identical label sequences")]
    fn aggregate_rejects_mismatched_labels() {
        let trials = vec![vec![point("a", 1.0, 0)], vec![point("b", 1.0, 0)]];
        aggregate(&trials);
    }

    #[test]
    fn table_renders_every_row() {
        let rows = aggregate(&[vec![point("alpha", 100.0, 1), point("beta", 200.0, 2)]]);
        let table = render_table("demo", &rows);
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
        assert!(table.contains("demo"));
    }

    #[test]
    fn correlation_sign_detects_inverse_relation() {
        // More jobs at faster (lower avg) sites → negative correlation.
        let mut p = point("inv", 0.0, 0);
        p.report.sites = vec![
            SiteOutcome {
                site: SiteId(0),
                name: "fast".into(),
                completed: 100,
                cancelled: 0,
                avg_completion_secs: Some(50.0),
            },
            SiteOutcome {
                site: SiteId(1),
                name: "mid".into(),
                completed: 50,
                cancelled: 0,
                avg_completion_secs: Some(100.0),
            },
            SiteOutcome {
                site: SiteId(2),
                name: "slow".into(),
                completed: 10,
                cancelled: 0,
                avg_completion_secs: Some(200.0),
            },
        ];
        let r = jobs_vs_speed_correlation(&p).unwrap();
        assert!(r < -0.8, "expected strongly negative, got {r}");
    }

    #[test]
    fn correlation_needs_three_sites() {
        let p = point("few", 0.0, 0);
        assert_eq!(jobs_vs_speed_correlation(&p), None);
    }

    #[test]
    fn svg_renders_every_row_and_scales() {
        let rows = aggregate(&[vec![point("alpha", 100.0, 1), point("beta", 200.0, 2)]]);
        let svg = render_svg_bars("demo", &rows, |r| r.avg_dag_secs);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("alpha"));
        assert!(svg.contains("beta"));
        // Longest bar belongs to the max value.
        assert!(
            svg.contains("width=\"420.0\""),
            "max bar spans the plot: {svg}"
        );
    }

    #[test]
    fn svg_escapes_markup() {
        let rows = aggregate(&[vec![point("a<b & c", 10.0, 0)]]);
        let svg = render_svg_bars("t<&", &rows, |r| r.avg_dag_secs);
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let parallel = parallel_map(&items, |&x| x * x + 1);
        assert_eq!(parallel, serial);
        assert!(parallel_map::<u64, u64>(&[], |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn run_trials_parallel_matches_serial() {
        let runner = |seed: u64| vec![point("a", seed as f64, seed)];
        let par = run_trials(&[1, 2, 3, 4], runner);
        assert_eq!(par[0].trials, 4);
        assert!((par[0].avg_dag_secs - 2.5).abs() < 1e-9);
    }
}
