//! Planner hot-path benchmark: amortized site scoring, before vs after.
//!
//! Runs the same seeded scenario twice per size — once with the planner's
//! per-cycle score cache disabled (`no_score_cache`: the reference path
//! that rescans every site's monitoring report per ready job) and once
//! with the cache on (the default) — and reports, per configuration:
//!
//! * planner-cycle latency (the `wall.plan_cycle_us` histogram),
//! * score-cache hit/miss counts and scratch-buffer reuse,
//! * that both configurations produced the identical schedule (the cache
//!   is decision-invariant; `tests/planner_equivalence.rs` checks the
//!   stronger byte-identical-trace property).
//!
//! A second section times a multi-seed sweep serially and through
//! [`crate::parallel_map`], verifying the fanned-out run produces
//! byte-identical reports in the same (scenario, seed) order.
//!
//! The output is machine-readable (`BENCH_planner.json`) so CI can fail
//! on a planner-latency regression against the committed baseline.

use crate::{parallel_map, scale};
use serde::{Deserialize, Serialize};
use sphinx_core::RunReport;
use sphinx_workloads::Scenario;

/// Metrics from one run of one planner configuration at one size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannerConfigMetrics {
    /// `"reference"` (score cache off) or `"cached"` (the default).
    pub config: String,
    /// Jobs the scheduler completed.
    pub jobs_completed: u64,
    /// Whether every DAG finished before the horizon.
    pub finished: bool,
    /// Wall-clock seconds for the whole simulated run.
    pub run_secs: f64,
    /// Planner cycles observed by the latency histogram.
    pub plan_cycles: u64,
    /// Mean planner-cycle latency, microseconds.
    pub plan_cycle_mean_us: f64,
    /// Worst planner-cycle latency, microseconds.
    pub plan_cycle_max_us: f64,
    /// Placements served by the per-cycle score cache.
    pub score_cache_hits: u64,
    /// Cache rebuilds (first placement of a (cycle, candidate-set) class).
    pub score_cache_misses: u64,
    /// Planner cycles that reused the candidate scratch buffer without
    /// reallocating.
    pub scratch_reused: u64,
}

/// Both planner configurations at one size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannerSizePoint {
    /// Size label (shared with the storage scale sweep).
    pub label: String,
    /// Site count.
    pub sites: u32,
    /// Total jobs submitted.
    pub jobs: u32,
    /// Score cache off: every placement rescans the candidate sites.
    pub reference: PlannerConfigMetrics,
    /// Score cache on (the default).
    pub cached: PlannerConfigMetrics,
    /// `reference.plan_cycle_mean_us / cached.plan_cycle_mean_us`.
    pub speedup: f64,
    /// Both configurations produced the same schedule (everything in the
    /// report except host-clock telemetry matched).
    pub schedule_identical: bool,
}

/// Serial vs [`parallel_map`] timing of a multi-seed sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepTiming {
    /// Seeds swept, in the order results are merged.
    pub seeds: Vec<u64>,
    /// Worker threads available to the parallel run.
    pub workers: usize,
    /// Wall-clock seconds running the seeds one after another.
    pub serial_secs: f64,
    /// Wall-clock seconds fanning the seeds across scoped threads.
    pub parallel_secs: f64,
    /// `serial_secs / parallel_secs`.
    pub speedup: f64,
    /// The merged parallel results serialize byte-identically to serial.
    pub identical: bool,
}

/// The whole planner benchmark artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannerBench {
    /// Reference-vs-cached latency at each size.
    pub points: Vec<PlannerSizePoint>,
    /// Deterministic parallel-runner timing.
    pub sweep: SweepTiming,
}

/// Strip the host-clock-dependent parts of a report so two runs of the
/// same schedule compare equal (`wall.*` histograms differ per run).
fn schedule_view(report: &RunReport) -> RunReport {
    let mut r = report.clone();
    r.telemetry = Default::default();
    r.analysis = Default::default();
    r
}

fn run_case(
    size: &scale::SizeSpec,
    seed: u64,
    config_label: &str,
    no_score_cache: bool,
) -> (PlannerConfigMetrics, RunReport) {
    let scenario = Scenario::builder()
        .sites(scale::scaled_catalog(size.sites))
        .dags(size.dags, size.jobs_per_dag)
        .seed(seed)
        .wall_clock_telemetry(true)
        .no_score_cache(no_score_cache)
        .build();
    let mut rt = scenario.build_runtime();
    let t0 = std::time::Instant::now(); // sphinx-lint: allow(wall-clock)
    let report = rt.run();
    let run_secs = t0.elapsed().as_secs_f64();

    let snapshot = rt.telemetry().snapshot();
    let plan_hist = snapshot.histograms.get("wall.plan_cycle_us");
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let metrics = PlannerConfigMetrics {
        config: config_label.to_owned(),
        jobs_completed: report.jobs_completed as u64,
        finished: report.finished,
        run_secs,
        plan_cycles: plan_hist.map_or(0, |h| h.count),
        plan_cycle_mean_us: plan_hist.map_or(0.0, |h| h.mean()),
        plan_cycle_max_us: plan_hist.map_or(0.0, |h| h.max),
        score_cache_hits: counter("plan.score_cache.hits"),
        score_cache_misses: counter("plan.score_cache.misses"),
        scratch_reused: counter("plan.scratch.reused"),
    };
    (metrics, report)
}

/// Run one size with the score cache off and on.
pub fn run_size(size: &scale::SizeSpec, seed: u64) -> PlannerSizePoint {
    let (reference, ref_report) = run_case(size, seed, "reference", true);
    let (cached, cached_report) = run_case(size, seed, "cached", false);
    let speedup = if cached.plan_cycle_mean_us > 0.0 {
        reference.plan_cycle_mean_us / cached.plan_cycle_mean_us
    } else {
        0.0
    };
    PlannerSizePoint {
        label: size.label.to_owned(),
        sites: size.sites,
        jobs: size.jobs(),
        reference,
        cached,
        speedup,
        schedule_identical: schedule_view(&ref_report) == schedule_view(&cached_report),
    }
}

/// Time a multi-seed sweep of one mid-size scenario serially and through
/// [`parallel_map`], and check the merged results are byte-identical.
/// Wall-clock telemetry stays **off** here so each run is bit-reproducible
/// and the serial/parallel artifacts can be compared as bytes.
pub fn run_sweep_timing(size: &scale::SizeSpec, seeds: &[u64]) -> SweepTiming {
    let run_one = |&seed: &u64| -> RunReport {
        Scenario::builder()
            .sites(scale::scaled_catalog(size.sites))
            .dags(size.dags, size.jobs_per_dag)
            .seed(seed)
            .build()
            .run()
    };
    let t0 = std::time::Instant::now(); // sphinx-lint: allow(wall-clock)
    let serial: Vec<RunReport> = seeds.iter().map(run_one).collect();
    let serial_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now(); // sphinx-lint: allow(wall-clock)
    let parallel: Vec<RunReport> = parallel_map(seeds, run_one);
    let parallel_secs = t1.elapsed().as_secs_f64();
    let identical = serde_json::to_string(&serial).expect("report serialize")
        == serde_json::to_string(&parallel).expect("report serialize");
    SweepTiming {
        seeds: seeds.to_vec(),
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs,
        parallel_secs,
        speedup: if parallel_secs > 0.0 {
            serial_secs / parallel_secs
        } else {
            0.0
        },
        identical,
    }
}

/// Render the sweep as a comparison table.
pub fn render_planner_table(bench: &PlannerBench) -> String {
    let mut out = String::new();
    out.push_str("\n== planner — site scoring, reference vs cached\n");
    out.push_str(&format!(
        "{:<22} {:<10} {:>11} {:>11} {:>11} {:>11} {:>9} {:>8}\n",
        "size", "config", "cycle (us)", "max (us)", "hits", "misses", "scratch", "same"
    ));
    for p in &bench.points {
        for m in [&p.reference, &p.cached] {
            out.push_str(&format!(
                "{:<22} {:<10} {:>11.1} {:>11.0} {:>11} {:>11} {:>9} {:>8}\n",
                p.label,
                m.config,
                m.plan_cycle_mean_us,
                m.plan_cycle_max_us,
                m.score_cache_hits,
                m.score_cache_misses,
                m.scratch_reused,
                if p.schedule_identical { "yes" } else { "NO" },
            ));
        }
        out.push_str(&format!(
            "{:<22} {:<10} {:>10.2}x\n",
            p.label, "speedup", p.speedup
        ));
    }
    let s = &bench.sweep;
    out.push_str(&format!(
        "\n== planner — {}-seed sweep, serial vs {} workers\n",
        s.seeds.len(),
        s.workers
    ));
    out.push_str(&format!(
        "serial {:.2}s, parallel {:.2}s, speedup {:.2}x, byte-identical: {}\n",
        s.serial_secs,
        s.parallel_secs,
        s.speedup,
        if s.identical { "yes" } else { "NO" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_point_is_decision_invariant_and_cache_hits() {
        let size = scale::SizeSpec {
            label: "tiny",
            sites: 4,
            dags: 2,
            jobs_per_dag: 8,
        };
        let point = run_size(&size, 3);
        assert!(point.reference.finished && point.cached.finished);
        assert!(
            point.schedule_identical,
            "score cache must not change the schedule"
        );
        assert_eq!(point.reference.jobs_completed, point.cached.jobs_completed);
        // The reference path counts would-be hits/misses identically, so
        // the telemetry counters match between the two configurations.
        assert_eq!(
            point.reference.score_cache_hits,
            point.cached.score_cache_hits
        );
        assert_eq!(
            point.reference.score_cache_misses,
            point.cached.score_cache_misses
        );
        assert!(point.cached.scratch_reused > 0, "scratch must be reused");
        let table = render_planner_table(&PlannerBench {
            points: vec![point],
            sweep: run_sweep_timing(&size, &[1, 2]),
        });
        assert!(table.contains("tiny"));
    }

    #[test]
    fn sweep_timing_merges_identically() {
        let size = scale::SizeSpec {
            label: "tiny",
            sites: 3,
            dags: 1,
            jobs_per_dag: 6,
        };
        let timing = run_sweep_timing(&size, &[5, 6, 7, 8]);
        assert!(
            timing.identical,
            "parallel sweep must merge byte-identically"
        );
        assert_eq!(timing.seeds, vec![5, 6, 7, 8]);
    }
}
