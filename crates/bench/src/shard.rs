//! Sharded-runtime benchmark: planner-cycle cost as DAGs scale out
//! across shards.
//!
//! Runs a fixed 15-site grid with the DAG count growing 10× from the
//! single-shard baseline (4 DAGs × 1 shard → 40 DAGs × 8 shards, 25
//! jobs per DAG) and reports, per point:
//!
//! * planner-cycle latency (the `wall.plan_cycle_us` histogram), both
//!   the raw global-cycle mean and the per-shard share. The simulation
//!   executes every shard's planning serially inside one global cycle;
//!   a real deployment runs shards concurrently, so the per-shard share
//!   is the latency one scheduler pays — the headline claim is that it
//!   stays flat (within 2×) while the DAG count grows 10×;
//! * coordination traffic (heartbeats, lease grants) from the
//!   coordination telemetry hub;
//! * that the sharded schedule is identical to the unsharded runtime's
//!   on the same scenario (the determinism contract, measured at bench
//!   scale rather than test scale).
//!
//! The output is machine-readable (`BENCH_shard.json`) so CI can fail on
//! a plan-cycle regression of the 4-shard point against the committed
//! baseline.

use crate::scale;
use serde::{Deserialize, Serialize};
use sphinx_core::shard::ShardConfig;
use sphinx_core::RunReport;
use sphinx_workloads::Scenario;

/// Sites in every sweep point: the Grid3 pattern at paper scale.
pub const SITES: u32 = 15;

/// One point of the shard sweep.
#[derive(Debug, Clone, Copy)]
pub struct ShardSizeSpec {
    /// Label used in tables and JSON.
    pub label: &'static str,
    /// Scheduler shards.
    pub shards: usize,
    /// Number of DAGs submitted.
    pub dags: u32,
    /// Jobs per DAG.
    pub jobs_per_dag: u32,
}

impl ShardSizeSpec {
    /// Total job count of this point.
    pub fn jobs(&self) -> u32 {
        self.dags * self.jobs_per_dag
    }
}

/// The sweep: DAG count grows 10× from the single-shard baseline while
/// the per-shard share stays roughly constant.
pub const SIZES: [ShardSizeSpec; 4] = [
    ShardSizeSpec {
        label: "1-shard-4-dags",
        shards: 1,
        dags: 4,
        jobs_per_dag: 25,
    },
    ShardSizeSpec {
        label: "2-shards-10-dags",
        shards: 2,
        dags: 10,
        jobs_per_dag: 25,
    },
    ShardSizeSpec {
        label: "4-shards-20-dags",
        shards: 4,
        dags: 20,
        jobs_per_dag: 25,
    },
    ShardSizeSpec {
        label: "8-shards-40-dags",
        shards: 8,
        dags: 40,
        jobs_per_dag: 25,
    },
];

/// Metrics from one sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPoint {
    /// Size label.
    pub label: String,
    /// Scheduler shards.
    pub shards: usize,
    /// DAGs submitted.
    pub dags: u32,
    /// Total jobs submitted.
    pub jobs: u32,
    /// Whether every DAG finished before the horizon.
    pub finished: bool,
    /// Jobs the shards completed.
    pub jobs_completed: u64,
    /// Wall-clock seconds for the whole simulated run.
    pub run_secs: f64,
    /// Global planner cycles observed by the latency histogram.
    pub plan_cycles: u64,
    /// Mean global planner-cycle latency, microseconds (all shards'
    /// planning, executed serially by the simulation).
    pub plan_cycle_mean_us: f64,
    /// Worst global planner-cycle latency, microseconds.
    pub plan_cycle_max_us: f64,
    /// Mean per-shard share of the cycle (`plan_cycle_mean_us / shards`)
    /// — what one scheduler pays when shards run concurrently.
    pub plan_cycle_mean_us_per_shard: f64,
    /// Lease heartbeats written to the coordination tables.
    pub heartbeats: u64,
    /// Leases granted at startup (== shards).
    pub leases_granted: u64,
    /// Adoptions (0 in this crash-free sweep).
    pub adoptions: u64,
    /// The sharded schedule equals the unsharded runtime's on the same
    /// scenario (jobs, per-DAG completions, makespan, plan count).
    pub matches_unsharded: bool,
}

/// The whole shard benchmark artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardBench {
    /// One entry per sweep size.
    pub points: Vec<ShardPoint>,
    /// Worst `plan_cycle_mean_us_per_shard` across the sweep divided by
    /// the single-shard baseline's — the flat-scaling headline (must
    /// stay ≤ 2: per-scheduler cost may not double while the DAG count
    /// grows 10×; shrinking below the baseline is the point of
    /// sharding, not a regression).
    pub mean_spread: f64,
}

/// The parts of a report that define "the same schedule" (host-clock
/// telemetry differs between any two processes).
fn schedule_view(report: &RunReport) -> (usize, Vec<f64>, f64, u64) {
    (
        report.jobs_completed,
        report.dag_completion_secs.clone(),
        report.makespan_secs,
        report.plans,
    )
}

/// Run one sweep point: the sharded deployment, then the unsharded
/// runtime on the identical scenario for the equivalence column.
pub fn run_point(size: &ShardSizeSpec, seed: u64) -> ShardPoint {
    let scenario = Scenario::builder()
        .sites(scale::scaled_catalog(SITES))
        .dags(size.dags, size.jobs_per_dag)
        .seed(seed)
        .wall_clock_telemetry(true)
        .build();
    let mut rt = scenario.build_sharded_runtime(ShardConfig {
        shards: size.shards,
        ..ShardConfig::default()
    });
    let t0 = std::time::Instant::now(); // sphinx-lint: allow(wall-clock)
    let report = rt.try_run().expect("sharded bench run");
    let run_secs = t0.elapsed().as_secs_f64();

    let snapshot = rt.telemetry().snapshot();
    let plan_hist = snapshot.histograms.get("wall.plan_cycle_us");
    let coord = rt.coord_telemetry();
    let unsharded = scenario.run();

    let plan_cycle_mean_us = plan_hist.map_or(0.0, |h| h.mean());
    ShardPoint {
        label: size.label.to_owned(),
        shards: size.shards,
        dags: size.dags,
        jobs: size.jobs(),
        finished: report.finished,
        jobs_completed: report.jobs_completed as u64,
        run_secs,
        plan_cycles: plan_hist.map_or(0, |h| h.count),
        plan_cycle_mean_us,
        plan_cycle_max_us: plan_hist.map_or(0.0, |h| h.max),
        plan_cycle_mean_us_per_shard: plan_cycle_mean_us / size.shards.max(1) as f64,
        heartbeats: coord.counter("shard.heartbeats"),
        leases_granted: coord.counter("shard.leases.granted"),
        adoptions: coord.counter("shard.adoptions"),
        matches_unsharded: schedule_view(&report) == schedule_view(&unsharded),
    }
}

/// Run a whole sweep and compute the flat-scaling spread.
pub fn run_sweep(sizes: &[ShardSizeSpec], seed: u64) -> ShardBench {
    let points: Vec<ShardPoint> = sizes
        .iter()
        .map(|size| {
            eprintln!("[shard] running {} ...", size.label);
            run_point(size, seed)
        })
        .collect();
    let means: Vec<f64> = points
        .iter()
        .map(|p| p.plan_cycle_mean_us_per_shard)
        .filter(|&m| m > 0.0)
        .collect();
    // Growth relative to the single-shard baseline (smallest shard count
    // present); falls back to the cheapest point when the sweep has no
    // baseline so the ratio is still well-defined.
    let baseline = points
        .iter()
        .filter(|p| p.plan_cycle_mean_us_per_shard > 0.0)
        .min_by_key(|p| p.shards)
        .map(|p| p.plan_cycle_mean_us_per_shard)
        .filter(|&b| b > 0.0);
    let max = means.iter().cloned().fold(0.0f64, f64::max);
    let mean_spread = match baseline {
        Some(base) => max / base,
        None => 0.0,
    };
    ShardBench {
        points,
        mean_spread,
    }
}

/// Render the sweep as a table.
pub fn render_shard_table(bench: &ShardBench) -> String {
    let mut out = String::new();
    out.push_str("\n== shard — planner cycle vs shard count (15 sites, 25 jobs/DAG)\n");
    out.push_str(&format!(
        "{:<18} {:>7} {:>6} {:>6} {:>11} {:>12} {:>11} {:>11} {:>6}\n",
        "size",
        "shards",
        "dags",
        "jobs",
        "cycle (us)",
        "/shard (us)",
        "max (us)",
        "heartbeats",
        "same"
    ));
    for p in &bench.points {
        out.push_str(&format!(
            "{:<18} {:>7} {:>6} {:>6} {:>11.1} {:>12.1} {:>11.0} {:>11} {:>6}\n",
            p.label,
            p.shards,
            p.dags,
            p.jobs,
            p.plan_cycle_mean_us,
            p.plan_cycle_mean_us_per_shard,
            p.plan_cycle_max_us,
            p.heartbeats,
            if p.matches_unsharded { "yes" } else { "NO" },
        ));
    }
    out.push_str(&format!(
        "per-shard plan-cycle mean vs single-shard baseline: {:.2}x worst growth (budget 2x)\n",
        bench.mean_spread
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_point_matches_the_unsharded_schedule() {
        let size = ShardSizeSpec {
            label: "tiny",
            shards: 2,
            dags: 2,
            jobs_per_dag: 8,
        };
        let point = run_point(&size, 3);
        assert!(point.finished);
        assert_eq!(point.jobs_completed, u64::from(size.jobs()));
        assert!(
            point.matches_unsharded,
            "sharding must not change the schedule"
        );
        assert_eq!(point.leases_granted, 2);
        assert_eq!(point.adoptions, 0);
        assert!(point.plan_cycles > 0, "wall-clock histogram must populate");
    }

    #[test]
    fn sweep_computes_the_mean_spread() {
        let sizes = [
            ShardSizeSpec {
                label: "a",
                shards: 1,
                dags: 1,
                jobs_per_dag: 6,
            },
            ShardSizeSpec {
                label: "b",
                shards: 2,
                dags: 2,
                jobs_per_dag: 6,
            },
        ];
        let bench = run_sweep(&sizes, 5);
        assert_eq!(bench.points.len(), 2);
        assert!(bench.mean_spread > 0.0);
        let table = render_shard_table(&bench);
        assert!(table.contains("worst growth"));
    }
}
