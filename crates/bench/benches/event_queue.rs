//! Event-queue throughput: the hot core of the grid simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sphinx_sim::{EventQueue, SimRng, SimTime};

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("push_then_drain", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_millis(rng.range_u64(0, 1_000_000)))
                .collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(t, i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            });
        });
    }
    // Steady-state churn: queue holds ~1k events, each pop schedules a
    // follow-up (the simulator's actual access pattern).
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("steady_state_churn", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(2);
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.push(SimTime::from_millis(i), i);
            }
            for _ in 0..10_000 {
                let (t, e) = q.pop().expect("non-empty");
                q.push(
                    t + sphinx_sim::Duration::from_millis(rng.range_u64(1, 1_000)),
                    e,
                );
            }
            q.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_push_pop);
criterion_main!(benches);
