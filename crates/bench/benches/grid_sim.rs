//! Whole-grid simulation throughput: events per second of the full
//! Grid3-scale substrate, and an end-to-end scheduling run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sphinx_core::strategy::StrategyKind;
use sphinx_sim::{Duration, SimTime};
use sphinx_workloads::{grid3, Scenario};

fn bench_background_churn(c: &mut Criterion) {
    // One simulated hour of pure background load on the full catalog.
    let mut group = c.benchmark_group("grid_sim");
    group.sample_size(10);
    group.bench_function("background_hour_15_sites", |b| {
        b.iter(|| {
            let mut grid = sphinx_grid::GridSim::new(
                grid3::catalog(),
                sphinx_data::TransferModel::default(),
                42,
            );
            grid.run_until(SimTime::from_secs(3600));
            grid.poll().len()
        });
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_run");
    group.sample_size(10);
    for &(dags, jobs) in &[(1u32, 50u32), (3, 100)] {
        let total = (dags * jobs) as u64;
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(
            BenchmarkId::new("paper_workload", format!("{dags}x{jobs}")),
            &(dags, jobs),
            |b, &(dags, jobs)| {
                b.iter(|| {
                    let report = Scenario::builder()
                        .seed(5)
                        .sites(grid3::catalog())
                        .dags(dags, jobs)
                        .strategy(StrategyKind::CompletionTime)
                        .horizon(Duration::from_secs(48 * 3600))
                        .build()
                        .run();
                    assert!(report.finished);
                    report.jobs_completed
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_background_churn, bench_end_to_end);
criterion_main!(benches);
