//! Storage hot-path scaling: the planner's by-state query over a large
//! job table, with and without secondary indexes + the decoded-row cache.
//!
//! This is the micro-benchmark twin of `figures -- scale` (which sweeps
//! whole simulated runs): here only the storage layer is on the bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};
use sphinx_db::{Database, DbConfig, MemWal, Record};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Job {
    id: u64,
    state: String,
    site: Option<u32>,
    attempts: u32,
}

impl Record for Job {
    const TABLE: &'static str = "scale_jobs";
    fn key(&self) -> u64 {
        self.id
    }
}

const STATES: [&str; 5] = ["Unsubmitted", "Ready", "Planned", "Running", "Finished"];

fn populate(db: &Database, rows: u64) {
    let mut txn = db.txn();
    for i in 0..rows {
        txn.put(&Job {
            id: i,
            state: STATES[(i % STATES.len() as u64) as usize].to_owned(),
            site: (i % 7 != 0).then_some((i % 15) as u32),
            attempts: (i % 3) as u32,
        })
        .unwrap();
    }
    txn.commit().unwrap();
}

fn bench_by_state_query(c: &mut Criterion) {
    let ready = serde_json::to_value("Ready").unwrap();
    let mut group = c.benchmark_group("scale_by_state_query");
    group.sample_size(20);
    for &rows in &[1_000u64, 10_000] {
        group.throughput(Throughput::Elements(rows));

        let baseline =
            Database::with_wal_and_config(Box::new(MemWal::shared()), DbConfig::baseline());
        populate(&baseline, rows);
        group.bench_with_input(
            BenchmarkId::new("baseline_full_decode", rows),
            &baseline,
            |b, db| {
                b.iter(|| db.scan_where::<Job>("/state", &ready).unwrap().len());
            },
        );

        let indexed = Database::in_memory();
        indexed.create_index::<Job>("/state");
        populate(&indexed, rows);
        group.bench_with_input(
            BenchmarkId::new("indexed_cached", rows),
            &indexed,
            |b, db| {
                b.iter(|| db.scan_where::<Job>("/state", &ready).unwrap().len());
            },
        );
    }
    group.finish();
}

fn bench_recovery_with_auto_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_recovery");
    group.sample_size(10);
    for (label, config) in [
        ("unbounded_log", DbConfig::baseline()),
        ("auto_checkpointed", DbConfig::default()),
    ] {
        // Churn: every row rewritten through the five states, so the raw
        // log is ~5× the live set unless auto-checkpointing compacts it.
        let wal = MemWal::shared();
        {
            let db = Database::with_wal_and_config(Box::new(wal.clone()), config);
            for state in STATES {
                let mut txn = db.txn();
                for i in 0..2_000u64 {
                    txn.put(&Job {
                        id: i,
                        state: state.to_owned(),
                        site: Some((i % 15) as u32),
                        attempts: 1,
                    })
                    .unwrap();
                }
                txn.commit().unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("replay", label), &wal, |b, wal| {
            b.iter(|| {
                let db = Database::recover_with_config(Box::new(wal.clone()), config).unwrap();
                db.replayed()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_by_state_query,
    bench_recovery_with_auto_checkpoint
);
criterion_main!(benches);
