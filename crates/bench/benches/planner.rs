//! Planner decision latency: strategy choice over the 15-site catalog,
//! and the full server plan cycle over a batch of ready jobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sphinx_core::prediction::Prediction;
use sphinx_core::server::{ServerConfig, SphinxServer};
use sphinx_core::strategy::{PlanningView, SiteInfo, StrategyKind, StrategyState};
use sphinx_dag::WorkloadSpec;
use sphinx_data::{ReplicaService, SiteId, TransferModel};
use sphinx_db::Database;
use sphinx_policy::UserId;
use sphinx_sim::{Duration, SimRng, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

fn catalog() -> Vec<SiteInfo> {
    sphinx_workloads::grid3::catalog()
        .into_iter()
        .map(|s| SiteInfo {
            id: s.id,
            name: s.name,
            cpus: s.cpus,
        })
        .collect()
}

fn bench_strategy_choice(c: &mut Criterion) {
    let catalog = catalog();
    let candidates: Vec<SiteId> = catalog.iter().map(|s| s.id).collect();
    let mut outstanding = BTreeMap::new();
    let mut prediction = Prediction::new();
    let mut rng = SimRng::new(5);
    for &site in &candidates {
        outstanding.insert(site, rng.range_u64(0, 50));
        for _ in 0..5 {
            prediction.record(site, rng.jittered(Duration::from_secs(150), 0.5));
        }
    }
    let reports = BTreeMap::new();
    let view = PlanningView {
        catalog: &catalog,
        candidates: &candidates,
        outstanding: &outstanding,
        reports: &reports,
        prediction: &prediction,
    };
    let mut group = c.benchmark_group("strategy_choice");
    group.throughput(Throughput::Elements(1));
    for strategy in StrategyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let mut state = StrategyState::new();
                b.iter(|| strategy.choose(&view, &mut state));
            },
        );
    }
    group.finish();
}

fn bench_plan_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cycle");
    group.sample_size(20);
    for &jobs in &[50u32, 200] {
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(BenchmarkId::new("ready_jobs", jobs), &jobs, |b, &jobs| {
            b.iter_with_setup(
                || {
                    // A fresh server with one wide DAG whose roots are
                    // all ready.
                    let mut server = SphinxServer::new(
                        Arc::new(Database::in_memory()),
                        catalog(),
                        ServerConfig {
                            strategy: StrategyKind::CompletionTime,
                            feedback: true,
                            policy_enabled: false,
                            archive_site: None,
                            score_cache: true,
                            ops_fast_path: false,
                        },
                    );
                    let dag = WorkloadSpec {
                        shape: sphinx_dag::DagShape::FanOutFanIn { width: jobs - 2 },
                        ..WorkloadSpec::small(1, jobs)
                    }
                    .generate(&SimRng::new(3), 0)
                    .remove(0);
                    let mut rls = ReplicaService::new();
                    for f in dag.external_inputs() {
                        rls.register(f, SiteId(0));
                    }
                    server.submit_dag(&dag, UserId(1), SimTime::ZERO).unwrap();
                    (server, rls)
                },
                |(mut server, mut rls)| {
                    server.plan_cycle(
                        SimTime::ZERO,
                        &mut rls,
                        &BTreeMap::new(),
                        &TransferModel::default(),
                    )
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategy_choice, bench_plan_cycle);
criterion_main!(benches);
