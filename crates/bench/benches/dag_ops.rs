//! DAG machinery: generation, validation, topological order, reduction
//! and frontier-driven completion at the paper's 100-job scale and above.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sphinx_dag::{reduce, Frontier, WorkloadSpec};
use sphinx_sim::SimRng;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_generate");
    for &jobs in &[100u32, 1000] {
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let spec = WorkloadSpec::small(1, jobs);
            let rng = SimRng::new(7);
            b.iter(|| spec.generate(&rng, 0));
        });
    }
    group.finish();
}

fn bench_topo_and_validate(c: &mut Criterion) {
    let dag = WorkloadSpec::small(1, 1000)
        .generate(&SimRng::new(7), 0)
        .remove(0);
    let mut group = c.benchmark_group("dag_analysis");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("topo_order_1000", |b| b.iter(|| dag.topo_order()));
    group.bench_function("validate_1000", |b| b.iter(|| dag.validate()));
    group.bench_function("depth_1000", |b| b.iter(|| dag.depth()));
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let dag = WorkloadSpec::paper(1)
        .generate(&SimRng::new(7), 0)
        .remove(0);
    let mut group = c.benchmark_group("dag_reduce");
    group.throughput(Throughput::Elements(dag.len() as u64));
    group.bench_function("nothing_exists", |b| {
        b.iter(|| reduce(&dag, |_| false));
    });
    group.bench_function("half_exists", |b| {
        b.iter(|| {
            let mut i = 0u32;
            reduce(&dag, |_| {
                i += 1;
                i.is_multiple_of(2)
            })
        });
    });
    group.finish();
}

fn bench_frontier(c: &mut Criterion) {
    let dag = WorkloadSpec::paper(1)
        .generate(&SimRng::new(7), 0)
        .remove(0);
    let mut group = c.benchmark_group("frontier");
    group.throughput(Throughput::Elements(dag.len() as u64));
    group.bench_function("drive_100_jobs_to_completion", |b| {
        b.iter(|| {
            let mut f = Frontier::new(&dag);
            while !f.is_finished() {
                let ready = f.ready();
                for j in ready {
                    f.complete(j);
                }
            }
            f.completed_count()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_topo_and_validate,
    bench_reduce,
    bench_frontier
);
criterion_main!(benches);
