//! Write-ahead-log costs: commit overhead per table write, transaction
//! batching, and recovery replay speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};
use sphinx_db::{Database, MemWal, Record};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Row {
    id: u64,
    state: String,
    attempts: u32,
}

impl Record for Row {
    const TABLE: &'static str = "bench_rows";
    fn key(&self) -> u64 {
        self.id
    }
}

fn row(id: u64) -> Row {
    Row {
        id,
        state: "submitted".to_owned(),
        attempts: 1,
    }
}

fn bench_commits(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("single_put_x1000", |b| {
        b.iter(|| {
            let db = Database::in_memory();
            for i in 0..1_000 {
                db.put(&row(i)).unwrap();
            }
            db.commit_count()
        });
    });
    group.bench_function("txn_batch_100_x10", |b| {
        b.iter(|| {
            let db = Database::in_memory();
            for batch in 0..10u64 {
                let mut txn = db.txn();
                for i in 0..100u64 {
                    txn.put(&row(batch * 100 + i)).unwrap();
                }
                txn.commit().unwrap();
            }
            db.commit_count()
        });
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(20);
    for &n in &[1_000u64, 10_000] {
        // Prepare a log with n committed writes (half later deleted).
        let wal = MemWal::shared();
        {
            let db = Database::with_wal(Box::new(wal.clone()));
            for i in 0..n {
                db.put(&row(i)).unwrap();
            }
            for i in 0..n / 2 {
                db.delete::<Row>(i).unwrap();
            }
        }
        group.throughput(Throughput::Elements(n + n / 2));
        group.bench_with_input(BenchmarkId::new("replay", n), &wal, |b, wal| {
            b.iter(|| {
                let db = Database::recover(Box::new(wal.clone())).unwrap();
                db.count::<Row>()
            });
        });
        // Recovery after checkpoint compaction.
        let compacted = MemWal::shared();
        {
            let db = Database::with_wal(Box::new(compacted.clone()));
            for i in 0..n {
                db.put(&row(i)).unwrap();
            }
            for i in 0..n / 2 {
                db.delete::<Row>(i).unwrap();
            }
            db.checkpoint().unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("replay_checkpointed", n),
            &compacted,
            |b, wal| {
                b.iter(|| {
                    let db = Database::recover(Box::new(wal.clone())).unwrap();
                    db.count::<Row>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_commits, bench_recovery);
criterion_main!(benches);
