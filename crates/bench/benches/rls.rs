//! Replica location service: the batched ("clubbed") lookup the paper
//! highlights versus per-file round-trips, and registration throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sphinx_data::{LogicalFile, ReplicaService, SiteId};
use sphinx_sim::SimRng;

fn populated(files: u64, sites: u32) -> (ReplicaService, Vec<LogicalFile>) {
    let mut rls = ReplicaService::new();
    let mut rng = SimRng::new(11);
    let names: Vec<LogicalFile> = (0..files)
        .map(|i| LogicalFile::new(format!("lfn-{i:06}.root")))
        .collect();
    for f in &names {
        let replicas = rng.range_u64(1, 4);
        for _ in 0..replicas {
            rls.register(f.clone(), SiteId(rng.range_u64(0, sites as u64) as u32));
        }
    }
    (rls, names)
}

fn bench_lookup(c: &mut Criterion) {
    let (rls, names) = populated(10_000, 15);
    let batch: Vec<LogicalFile> = names.iter().take(300).cloned().collect();
    let mut group = c.benchmark_group("rls_lookup");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("clubbed_300", |b| {
        b.iter_with_setup(|| rls.clone(), |mut rls| rls.locate_batch(&batch));
    });
    group.bench_function("individual_300", |b| {
        b.iter_with_setup(
            || rls.clone(),
            |mut rls| {
                let mut total = 0usize;
                for f in &batch {
                    total += rls.locate(f).len();
                }
                total
            },
        );
    });
    group.bench_function("exists_batch_300", |b| {
        b.iter_with_setup(|| rls.clone(), |mut rls| rls.exists_batch(&batch));
    });
    group.finish();
}

fn bench_register(c: &mut Criterion) {
    let mut group = c.benchmark_group("rls_register");
    for &n in &[1_000u64, 10_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let names: Vec<LogicalFile> = (0..n)
                .map(|i| LogicalFile::new(format!("reg-{i}.dat")))
                .collect();
            b.iter(|| {
                let mut rls = ReplicaService::new();
                for (i, f) in names.iter().enumerate() {
                    rls.register(f.clone(), SiteId((i % 15) as u32));
                }
                rls.stats().replicas
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_register);
criterion_main!(benches);
