//! Live ops plane: streaming in-run aggregation, online anomaly
//! detection and an HTTP ops endpoint for SPHINX.
//!
//! The paper's central caveat is that grid monitoring is imperfect —
//! stale, lossy, noisy (§2) — and that the scheduler compensates through
//! job feedback (§3.3–3.4). The post-hoc [`reliability`] path learns
//! about a black-hole site only after a submitted job times out and its
//! cancellation report arrives: tens of minutes of wasted submissions.
//! This crate watches the run *while it happens*:
//!
//! * [`OpsAggregator`] consumes the telemetry trace ring and metrics
//!   registry incrementally (cursor-based, one lock acquisition per
//!   planner cycle, no full-snapshot rescans) and maintains rolling
//!   sim-time-windowed per-site health views — queue depth, submit→start
//!   latency, completion/cancel rates, monitor-report staleness — plus
//!   per-scheduler health (plan-cycle cadence, WAL append rate, lease
//!   churn).
//! * Three **online detectors** run over those windows: a black-hole
//!   detector (submits with no starts or completions within
//!   `k_windows`), a queue-anomaly detector (windowed z-score against a
//!   rolling baseline) and a staleness detector (monitor-report age vs.
//!   the update period). Each fires a typed [`OpsAlert`], recorded as a
//!   [`TraceKind::OpsAlert`] trace event, and can optionally feed the
//!   reliability index so flagging happens cycles earlier than the
//!   post-hoc path.
//! * [`http::OpsServer`] serves `/health`, `/snapshot` (JSON),
//!   `/metrics` (validated Prometheus text) and `/` (a static dashboard
//!   polling `/snapshot`) over a hand-rolled `std::net::TcpListener` —
//!   the workspace is offline, so no HTTP dependency exists to take.
//!
//! **Determinism boundary.** Everything in [`OpsAggregator`] is driven
//! by simulation time: windows are fixed sim-time buckets, detectors
//! evaluate only closed windows, and alerts are stamped with the
//! planner-tick sim time that evaluated them — so two same-seed runs
//! emit byte-identical alert streams, aggregator on or off. Wall-clock
//! exists only inside the HTTP serving thread, which renders whatever
//! the sim last published and never feeds anything back in.
//!
//! [`reliability`]: https://docs.rs/sphinx-core

pub mod http;

use serde::{Deserialize, Serialize};
use sphinx_sim::{Duration, SimTime};
use sphinx_telemetry::{OpsPoll, Telemetry, TraceEventLite, TraceKind};
use std::collections::BTreeMap;

/// Window slots retained per site. Bounds both memory and how far back
/// detectors may look; `OpsConfig` clamps its window counts under it.
pub const HISTORY: usize = 32;

/// Tuning for the live ops plane. All quantities are simulation-time;
/// nothing here touches the wall clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpsConfig {
    /// Width of one aggregation window.
    pub window: Duration,
    /// Closed windows the black-hole detector looks back over.
    pub k_windows: u32,
    /// Minimum submits inside those windows before a black-hole verdict
    /// (one unlucky submit is not evidence).
    pub min_submits: u32,
    /// Z-score at which the queue-anomaly detector fires.
    pub z_threshold: f64,
    /// Closed windows forming the queue-depth baseline.
    pub baseline_windows: u32,
    /// Baseline samples required before z-scores are trusted.
    pub min_baseline: u32,
    /// The staleness detector fires when a monitor report is older than
    /// `staleness_factor × update_period`.
    pub staleness_factor: f64,
    /// The monitor's sampling period (staleness reference).
    pub update_period: Duration,
    /// Alerts kept in the published snapshot's recent ring.
    pub recent_alerts: usize,
}

impl Default for OpsConfig {
    fn default() -> Self {
        OpsConfig {
            window: Duration::from_mins(2),
            k_windows: 3,
            min_submits: 2,
            z_threshold: 4.0,
            baseline_windows: 12,
            min_baseline: 6,
            staleness_factor: 3.0,
            update_period: Duration::from_mins(2),
            recent_alerts: 64,
        }
    }
}

/// Which online detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpsDetector {
    /// Submits with no starts or completions within `k_windows`.
    BlackHole,
    /// Queue depth z-score against the rolling baseline.
    QueueAnomaly,
    /// Monitor report age exceeded `staleness_factor × update_period`.
    Staleness,
}

impl OpsDetector {
    /// Stable label used in `OpsAlert` trace details.
    pub fn label(self) -> &'static str {
        match self {
            OpsDetector::BlackHole => "black_hole",
            OpsDetector::QueueAnomaly => "queue_anomaly",
            OpsDetector::Staleness => "staleness",
        }
    }
}

/// One detector firing. `Copy` on purpose: alerts move through the hot
/// tick without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpsAlert {
    /// Planner-tick sim time that evaluated the windows.
    pub at: SimTime,
    /// Which detector fired.
    pub detector: OpsDetector,
    /// The site concerned.
    pub site: u32,
    /// The evidence value (submit count, z-score, staleness ms).
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

/// Rolling health view of one site, as published in [`OpsSnapshot`].
/// `*_recent` fields sum the last `k_windows` closed windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteHealth {
    /// Site id.
    pub site: u32,
    /// Latest monitored queue depth.
    pub queue_depth: f64,
    /// Latest monitor-report age in sim-milliseconds.
    pub staleness_ms: f64,
    /// Submits over the recent closed windows.
    pub submits_recent: u32,
    /// Dispatches over the recent closed windows.
    pub starts_recent: u32,
    /// Completions over the recent closed windows.
    pub completions_recent: u32,
    /// Holds/cancellations over the recent closed windows.
    pub cancels_recent: u32,
    /// Mean submit→start latency over the recent closed windows (ms; 0
    /// when nothing started).
    pub latency_mean_ms: f64,
    /// Black-hole detector currently firing.
    pub black_hole: bool,
    /// Queue-anomaly detector currently firing.
    pub queue_anomaly: bool,
    /// Staleness detector currently firing.
    pub stale: bool,
}

/// Scheduler-side health: plan cadence, WAL pressure, lease churn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerHealth {
    /// Planner cycles seen in the trace stream.
    pub plan_cycles: u64,
    /// Sim-time gap between the two most recent plan cycles (ms).
    pub last_cycle_gap_ms: u64,
    /// Lifetime WAL appends (from the metrics registry).
    pub wal_appends: u64,
    /// WAL appends inside the last closed window.
    pub wal_appends_last_window: u64,
    /// Shard leases granted.
    pub lease_grants: u64,
    /// Shard leases expired.
    pub lease_expiries: u64,
    /// Dead-shard partitions adopted.
    pub shard_adoptions: u64,
}

/// Point-in-time publication of the aggregator's state: what `/snapshot`
/// serves and what the figure harness inspects. Rebuilt in place each
/// tick (the vectors are reused, not reallocated).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpsSnapshot {
    /// Sim time of the publishing tick (ms).
    pub now_ms: u64,
    /// Window width (ms).
    pub window_ms: u64,
    /// Aggregator ticks so far.
    pub ticks: u64,
    /// Trace events consumed (the poll cursor).
    pub events_seen: u64,
    /// Trace events lost to ring overflow before the aggregator saw them.
    pub events_missed: u64,
    /// Alerts fired over the run.
    pub alerts_total: u64,
    /// Per-site health, site-ordered.
    pub sites: Vec<SiteHealth>,
    /// Scheduler-side health.
    pub scheduler: SchedulerHealth,
    /// The most recent alerts, oldest first (bounded ring).
    pub recent_alerts: Vec<OpsAlert>,
}

/// One sim-time window's activity at one site. Slots live in a fixed
/// per-site ring indexed by `window % HISTORY`; `stamp` (window index
/// + 1, 0 = empty) detects slot reuse without any clearing sweep.
#[derive(Debug, Clone, Copy, Default)]
struct WindowSlot {
    stamp: u64,
    submits: u32,
    starts: u32,
    completions: u32,
    cancels: u32,
    latency_sum_ms: u64,
    latency_count: u32,
    queue_depth: f64,
    queue_seen: bool,
}

/// Aggregation state for one site.
#[derive(Debug, Clone)]
struct SiteState {
    slots: [WindowSlot; HISTORY],
    /// Lifetime tallies; `submits_total - starts_total - cancels_total`
    /// is the number of submissions sitting unstarted at the site.
    submits_total: u64,
    starts_total: u64,
    completions_total: u64,
    cancels_total: u64,
    /// Window of the oldest submission still pending (`None` when
    /// nothing is pending) — the black-hole detector's evidence clock.
    first_pending_w: Option<u64>,
    queue_depth: f64,
    staleness_ms: f64,
    gauges_seen: bool,
    black_hole: bool,
    queue_anomaly: bool,
    stale: bool,
}

impl Default for SiteState {
    fn default() -> Self {
        SiteState {
            slots: [WindowSlot::default(); HISTORY],
            submits_total: 0,
            starts_total: 0,
            completions_total: 0,
            cancels_total: 0,
            first_pending_w: None,
            queue_depth: 0.0,
            staleness_ms: 0.0,
            gauges_seen: false,
            black_hole: false,
            queue_anomaly: false,
            stale: false,
        }
    }
}

impl SiteState {
    /// Submissions accepted but never started or cancelled.
    fn pending(&self) -> u64 {
        self.submits_total
            .saturating_sub(self.starts_total + self.cancels_total)
    }

    /// Keep the pending-evidence clock consistent after an event.
    fn settle_pending(&mut self) {
        if self.pending() == 0 {
            self.first_pending_w = None;
        }
    }
}

impl SiteState {
    /// The slot for window `widx`, reset if it still holds an older
    /// window's tallies. `% HISTORY` keeps the index in range, so this
    /// only returns `None` on an impossible out-of-bounds — `Option`
    /// (rather than `[...]` indexing) keeps the crate free of panic
    /// sites.
    fn slot_entry(&mut self, widx: u64) -> Option<&mut WindowSlot> {
        let slot = self.slots.get_mut((widx as usize) % HISTORY)?;
        if slot.stamp != widx + 1 {
            *slot = WindowSlot {
                stamp: widx + 1,
                ..WindowSlot::default()
            };
        }
        Some(slot)
    }

    /// The slot for window `widx`, only if it holds that window.
    fn slot(&self, widx: u64) -> Option<&WindowSlot> {
        self.slots
            .get((widx as usize) % HISTORY)
            .filter(|s| s.stamp == widx + 1)
    }
}

/// The streaming aggregator. Owned by the runtime; `tick` runs at the
/// end of every planner cycle on the sim thread, and `publish_into`
/// hands a rebuilt [`OpsSnapshot`] to whatever shares it (the HTTP
/// server, the figure harness).
#[derive(Debug)]
pub struct OpsAggregator {
    config: OpsConfig,
    window_ms: u64,
    cursor: u64,
    missed_total: u64,
    ticks: u64,
    alerts_total: u64,
    poll: OpsPoll,
    sites: BTreeMap<u32, SiteState>,
    /// Submit sim time per in-flight job key (latency pairing). Entries
    /// leave on start, completion or cancellation — bounded by in-flight
    /// jobs.
    submit_times: BTreeMap<u64, SimTime>,
    scheduler: SchedulerHealth,
    last_plan_cycle: Option<SimTime>,
    /// WAL-append counter value at the previous tick, plus the window
    /// accumulating the delta.
    wal_prev: u64,
    wal_window: u64,
    wal_window_count: u64,
    /// Alerts fired by the current tick (reused buffer).
    fired: Vec<OpsAlert>,
    /// Bounded ring of recent alerts for the snapshot.
    recent: Vec<OpsAlert>,
}

impl OpsAggregator {
    /// A fresh aggregator. Window counts are clamped under [`HISTORY`]
    /// so detector lookbacks always fit the per-site slot ring.
    pub fn new(config: OpsConfig) -> Self {
        let mut config = config;
        let cap = (HISTORY as u32).saturating_sub(2);
        config.k_windows = config.k_windows.clamp(1, cap);
        config.baseline_windows = config.baseline_windows.clamp(1, cap);
        config.min_baseline = config.min_baseline.clamp(1, config.baseline_windows);
        let window_ms = config.window.as_millis().max(1);
        OpsAggregator {
            window_ms,
            cursor: 0,
            missed_total: 0,
            ticks: 0,
            alerts_total: 0,
            poll: OpsPoll::default(),
            sites: BTreeMap::new(),
            submit_times: BTreeMap::new(),
            scheduler: SchedulerHealth::default(),
            last_plan_cycle: None,
            wal_prev: 0,
            wal_window: 0,
            wal_window_count: 0,
            fired: Vec::new(),
            recent: Vec::new(),
            config,
        }
    }

    /// The configuration in force (post-clamping).
    pub fn config(&self) -> &OpsConfig {
        &self.config
    }

    /// Consume everything recorded since the last tick, roll the
    /// windows, run the detectors, and return the alerts that fired this
    /// tick. Called from the runtime at the end of each planner cycle;
    /// steady-state ticks allocate nothing.
    // sphinx-hot
    pub fn tick(&mut self, now: SimTime, telemetry: &Telemetry) -> &[OpsAlert] {
        self.ticks += 1;
        self.fired.clear();
        let mut poll = std::mem::take(&mut self.poll);
        self.cursor = telemetry.ops_poll(self.cursor, &mut poll);
        if poll.missed > 0 {
            self.missed_total += poll.missed;
            telemetry.counter_add("ops.poll.missed", poll.missed);
        }
        for event in poll.events.iter() {
            self.ingest_trace_event(event);
        }
        for (name, site, value) in poll.site_gauges.iter() {
            self.ingest_site_gauge(name, *site, *value, now);
        }
        for (name, value) in poll.counters.iter() {
            if *name == "wal.appends" {
                self.ingest_wal_counter(*value, now);
            }
        }
        self.poll = poll;
        self.run_detectors(now, telemetry);
        telemetry.counter_add("ops.alerts", self.fired.len() as u64);
        self.alerts_total += self.fired.len() as u64;
        for alert in self.fired.iter() {
            if self.recent.len() >= self.config.recent_alerts.max(1) {
                self.recent.remove(0);
            }
            self.recent.push(*alert);
        }
        &self.fired
    }

    fn window_of(&self, t: SimTime) -> u64 {
        t.as_millis() / self.window_ms
    }

    fn ingest_trace_event(&mut self, event: &TraceEventLite) {
        let widx = event.sim_time.as_millis() / self.window_ms;
        match event.kind {
            TraceKind::GridSubmit => {
                if let Some(job) = event.job {
                    self.submit_times.insert(job, event.sim_time);
                }
                if let Some(site) = event.site {
                    let state = self.sites.entry(site).or_default();
                    state.submits_total += 1;
                    if state.first_pending_w.is_none() {
                        state.first_pending_w = Some(widx);
                    }
                    if let Some(slot) = state.slot_entry(widx) {
                        slot.submits += 1;
                    }
                }
            }
            TraceKind::GridStart => {
                let latency = event
                    .job
                    .and_then(|job| self.submit_times.remove(&job))
                    .map(|submitted| event.sim_time.since(submitted).as_millis());
                if let Some(site) = event.site {
                    let state = self.sites.entry(site).or_default();
                    state.starts_total += 1;
                    state.settle_pending();
                    if let Some(slot) = state.slot_entry(widx) {
                        slot.starts += 1;
                        if let Some(ms) = latency {
                            slot.latency_sum_ms += ms;
                            slot.latency_count += 1;
                        }
                    }
                }
            }
            TraceKind::GridComplete => {
                if let Some(job) = event.job {
                    self.submit_times.remove(&job);
                }
                if let Some(site) = event.site {
                    let state = self.sites.entry(site).or_default();
                    state.completions_total += 1;
                    if let Some(slot) = state.slot_entry(widx) {
                        slot.completions += 1;
                    }
                }
            }
            TraceKind::GridHold | TraceKind::GridCancel => {
                if let Some(job) = event.job {
                    self.submit_times.remove(&job);
                }
                if let Some(site) = event.site {
                    let state = self.sites.entry(site).or_default();
                    state.cancels_total += 1;
                    state.settle_pending();
                    if let Some(slot) = state.slot_entry(widx) {
                        slot.cancels += 1;
                    }
                }
            }
            TraceKind::PlanCycle => {
                self.scheduler.plan_cycles += 1;
                if let Some(prev) = self.last_plan_cycle {
                    self.scheduler.last_cycle_gap_ms = event.sim_time.since(prev).as_millis();
                }
                self.last_plan_cycle = Some(event.sim_time);
            }
            TraceKind::LeaseGranted => self.scheduler.lease_grants += 1,
            TraceKind::LeaseExpired => self.scheduler.lease_expiries += 1,
            TraceKind::ShardAdoption => self.scheduler.shard_adoptions += 1,
            // Never re-ingest our own alerts.
            _ => {}
        }
    }

    fn ingest_site_gauge(&mut self, name: &str, site: u32, value: f64, now: SimTime) {
        let widx = self.window_of(now);
        let state = self.sites.entry(site).or_default();
        match name {
            "monitor.queue_depth" => {
                state.queue_depth = value;
                state.gauges_seen = true;
                if let Some(slot) = state.slot_entry(widx) {
                    slot.queue_depth = value;
                    slot.queue_seen = true;
                }
            }
            "monitor.staleness" => {
                state.staleness_ms = value;
                state.gauges_seen = true;
            }
            _ => {}
        }
    }

    fn ingest_wal_counter(&mut self, value: u64, now: SimTime) {
        let widx = self.window_of(now);
        if widx != self.wal_window {
            self.scheduler.wal_appends_last_window = self.wal_window_count;
            self.wal_window = widx;
            self.wal_window_count = 0;
        }
        self.wal_window_count += value.saturating_sub(self.wal_prev);
        self.wal_prev = value;
        self.scheduler.wal_appends = value;
    }

    /// Evaluate every detector over closed windows. Each detector is
    /// edge-triggered: it fires once when its condition becomes true and
    /// re-arms when the condition clears.
    fn run_detectors(&mut self, now: SimTime, telemetry: &Telemetry) {
        let cur = self.window_of(now);
        let config = &self.config;
        let fired = &mut self.fired;
        let stale_limit = config.staleness_factor * config.update_period.as_millis() as f64;
        for (site, state) in self.sites.iter_mut() {
            // Black hole: submissions sitting unstarted while the site
            // shows no starts or completions across the last k closed
            // windows — and the oldest pending submission is itself at
            // least k windows old, so silence is evidence, not recency.
            let (mut starts, mut completions) = (0u32, 0u32);
            for back in 1..=u64::from(config.k_windows) {
                if let Some(slot) = cur.checked_sub(back).and_then(|w| state.slot(w)) {
                    starts += slot.starts;
                    completions += slot.completions;
                }
            }
            let pending = state.pending();
            let ripe = state
                .first_pending_w
                .is_some_and(|w| cur >= w + u64::from(config.k_windows));
            let black =
                ripe && pending >= u64::from(config.min_submits) && starts == 0 && completions == 0;
            if black && !state.black_hole {
                push_alert(
                    fired,
                    telemetry,
                    now,
                    OpsDetector::BlackHole,
                    *site,
                    pending as f64,
                    f64::from(config.min_submits),
                );
            }
            state.black_hole = black;

            // Queue anomaly: last closed window's depth against the
            // baseline of the windows before it.
            let anomalous = cur
                .checked_sub(1)
                .and_then(|w| state.slot(w))
                .filter(|slot| slot.queue_seen)
                .and_then(|slot| {
                    let z = queue_z_score(state, cur, config)?;
                    Some((slot.queue_depth, z))
                });
            match anomalous {
                Some((_, z)) if z >= config.z_threshold => {
                    if !state.queue_anomaly {
                        push_alert(
                            fired,
                            telemetry,
                            now,
                            OpsDetector::QueueAnomaly,
                            *site,
                            z,
                            config.z_threshold,
                        );
                    }
                    state.queue_anomaly = true;
                }
                Some(_) => state.queue_anomaly = false,
                // No sample / no baseline: keep the previous verdict.
                None => {}
            }

            // Staleness: the report the planner is using is too old.
            let stale = state.gauges_seen && state.staleness_ms > stale_limit;
            if stale && !state.stale {
                push_alert(
                    fired,
                    telemetry,
                    now,
                    OpsDetector::Staleness,
                    *site,
                    state.staleness_ms,
                    stale_limit,
                );
            }
            state.stale = stale;
        }
    }

    /// Rebuild `snap` from current state, reusing its vectors.
    pub fn publish_into(&self, now: SimTime, snap: &mut OpsSnapshot) {
        snap.now_ms = now.as_millis();
        snap.window_ms = self.window_ms;
        snap.ticks = self.ticks;
        snap.events_seen = self.cursor;
        snap.events_missed = self.missed_total;
        snap.alerts_total = self.alerts_total;
        snap.scheduler = self.scheduler;
        snap.sites.clear();
        let cur = self.window_of(now);
        for (site, state) in self.sites.iter() {
            let mut health = SiteHealth {
                site: *site,
                queue_depth: state.queue_depth,
                staleness_ms: state.staleness_ms,
                black_hole: state.black_hole,
                queue_anomaly: state.queue_anomaly,
                stale: state.stale,
                ..SiteHealth::default()
            };
            let mut latency_sum = 0u64;
            let mut latency_count = 0u32;
            for back in 1..=u64::from(self.config.k_windows) {
                if let Some(slot) = cur.checked_sub(back).and_then(|w| state.slot(w)) {
                    health.submits_recent += slot.submits;
                    health.starts_recent += slot.starts;
                    health.completions_recent += slot.completions;
                    health.cancels_recent += slot.cancels;
                    latency_sum += slot.latency_sum_ms;
                    latency_count += slot.latency_count;
                }
            }
            if latency_count > 0 {
                health.latency_mean_ms = latency_sum as f64 / f64::from(latency_count);
            }
            snap.sites.push(health);
        }
        snap.recent_alerts.clear();
        snap.recent_alerts.extend_from_slice(&self.recent);
    }

    /// Convenience snapshot (tests, figure harness).
    pub fn snapshot_at(&self, now: SimTime) -> OpsSnapshot {
        let mut snap = OpsSnapshot::default();
        self.publish_into(now, &mut snap);
        snap
    }
}

/// Z-score of the last closed window's queue depth against the baseline
/// windows before it. `None` until `min_baseline` sampled windows exist.
/// The deviation floor of 1 job keeps a flat baseline (σ ≈ 0) from
/// turning any activity at all into an anomaly.
fn queue_z_score(state: &SiteState, cur: u64, config: &OpsConfig) -> Option<f64> {
    let last = cur.checked_sub(1).and_then(|w| state.slot(w))?;
    if !last.queue_seen {
        return None;
    }
    let mut sum = 0.0;
    let mut count = 0u32;
    for back in 2..=u64::from(config.baseline_windows) + 1 {
        if let Some(slot) = cur.checked_sub(back).and_then(|w| state.slot(w)) {
            if slot.queue_seen {
                sum += slot.queue_depth;
                count += 1;
            }
        }
    }
    if count < config.min_baseline {
        return None;
    }
    let mean = sum / f64::from(count);
    let mut var = 0.0;
    for back in 2..=u64::from(config.baseline_windows) + 1 {
        if let Some(slot) = cur.checked_sub(back).and_then(|w| state.slot(w)) {
            if slot.queue_seen {
                let d = slot.queue_depth - mean;
                var += d * d;
            }
        }
    }
    let std = (var / f64::from(count)).sqrt().max(1.0);
    Some((last.queue_depth - mean) / std)
}

/// Record one alert: into the tick's fired buffer, the trace stream and
/// the metrics registry. The detail string is the one allocation on the
/// alert path — alerts are edge-triggered and rare, so it stays off the
/// steady-state tick.
fn push_alert(
    fired: &mut Vec<OpsAlert>,
    telemetry: &Telemetry,
    now: SimTime,
    detector: OpsDetector,
    site: u32,
    value: f64,
    threshold: f64,
) {
    fired.push(OpsAlert {
        at: now,
        detector,
        site,
        value,
        threshold,
    });
    // sphinx-lint: allow(hot-alloc)
    let detail = format!("{} value={value} threshold={threshold}", detector.label());
    telemetry.trace(
        TraceKind::OpsAlert,
        now,
        None,
        Some(sphinx_data::SiteId(site)),
        detail,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sphinx_data::SiteId;
    use sphinx_telemetry::InMemorySink;

    fn mins(m: u64) -> SimTime {
        SimTime::from_secs(m * 60)
    }

    fn quick_config() -> OpsConfig {
        OpsConfig {
            window: Duration::from_mins(2),
            k_windows: 3,
            min_submits: 2,
            ..OpsConfig::default()
        }
    }

    #[test]
    fn black_hole_detector_fires_once_on_silent_submits() {
        let tel = Telemetry::new();
        let mut agg = OpsAggregator::new(quick_config());
        // Site 0: submits that never start. Site 1: healthy.
        for i in 0..4u64 {
            tel.grid_submit(SiteId(0), i, mins(i));
            tel.grid_submit(SiteId(1), 100 + i, mins(i));
            tel.grid_start(SiteId(1), 100 + i, mins(i));
        }
        // Windows 0..2 are closed at t=8min (window 4).
        let fired: Vec<OpsAlert> = agg.tick(mins(8), &tel).to_vec();
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].detector, OpsDetector::BlackHole);
        assert_eq!(fired[0].site, 0);
        // Still black, but edge-triggered: no re-fire.
        assert!(agg.tick(mins(9), &tel).is_empty());
        let snap = agg.snapshot_at(mins(9));
        let s0 = snap.sites.iter().find(|s| s.site == 0).unwrap();
        assert!(s0.black_hole);
        let s1 = snap.sites.iter().find(|s| s.site == 1).unwrap();
        assert!(!s1.black_hole);
    }

    #[test]
    fn black_hole_rearms_after_recovery() {
        let tel = Telemetry::new();
        let mut agg = OpsAggregator::new(quick_config());
        // Windows are 2 min wide; at t=8min the lookback covers windows
        // 1..=3 (sim minutes 2..8).
        tel.grid_submit(SiteId(0), 1, mins(2));
        tel.grid_submit(SiteId(0), 2, mins(3));
        assert_eq!(agg.tick(mins(8), &tel).len(), 1);
        // The site starts running jobs → condition clears.
        tel.grid_submit(SiteId(0), 3, mins(9));
        tel.grid_start(SiteId(0), 3, mins(10));
        assert!(agg.tick(mins(12), &tel).is_empty());
        assert!(!agg.snapshot_at(mins(12)).sites[0].black_hole);
        // Goes silent again → a new edge fires.
        tel.grid_submit(SiteId(0), 4, mins(20));
        tel.grid_submit(SiteId(0), 5, mins(21));
        let fired = agg.tick(mins(26), &tel).to_vec();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].detector, OpsDetector::BlackHole);
    }

    #[test]
    fn queue_anomaly_needs_baseline_then_fires_on_spike() {
        let tel = Telemetry::new();
        let mut agg = OpsAggregator::new(OpsConfig {
            z_threshold: 3.0,
            ..quick_config()
        });
        // Flat baseline: depth ~4 for 10 windows.
        for w in 0..10u64 {
            tel.site_gauge_set("monitor.queue_depth", SiteId(0), 4.0);
            agg.tick(mins(w * 2), &tel);
        }
        assert!(agg.snapshot_at(mins(20)).alerts_total == 0);
        // Spike to 40 in window 10, evaluated once window 11 is current.
        tel.site_gauge_set("monitor.queue_depth", SiteId(0), 40.0);
        agg.tick(mins(20), &tel);
        let fired = agg.tick(mins(22), &tel).to_vec();
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].detector, OpsDetector::QueueAnomaly);
        assert!(fired[0].value >= 3.0);
    }

    #[test]
    fn staleness_detector_tracks_monitor_gauge() {
        let tel = Telemetry::new();
        let mut agg = OpsAggregator::new(quick_config());
        tel.site_gauge_set("monitor.staleness", SiteId(3), 30_000.0);
        assert!(agg.tick(mins(1), &tel).is_empty());
        // Update period 2min, factor 3 → limit 6min. 10min is stale.
        tel.site_gauge_set("monitor.staleness", SiteId(3), 600_000.0);
        let fired = agg.tick(mins(2), &tel).to_vec();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].detector, OpsDetector::Staleness);
        assert_eq!(fired[0].site, 3);
        // Fresh report clears and re-arms.
        tel.site_gauge_set("monitor.staleness", SiteId(3), 1_000.0);
        assert!(agg.tick(mins(3), &tel).is_empty());
        assert!(!agg.snapshot_at(mins(3)).sites[0].stale);
    }

    #[test]
    fn latency_and_rates_aggregate_per_window() {
        let tel = Telemetry::new();
        let mut agg = OpsAggregator::new(quick_config());
        tel.grid_submit(SiteId(2), 7, mins(2));
        tel.grid_start(SiteId(2), 7, mins(3));
        tel.grid_complete(SiteId(2), 7, mins(4));
        tel.grid_submit(SiteId(2), 8, mins(4));
        tel.grid_cancel(SiteId(2), 8, mins(5));
        agg.tick(mins(8), &tel);
        let snap = agg.snapshot_at(mins(8));
        let s = snap.sites.iter().find(|s| s.site == 2).unwrap();
        assert_eq!(s.submits_recent, 2);
        assert_eq!(s.starts_recent, 1);
        assert_eq!(s.completions_recent, 1);
        assert_eq!(s.cancels_recent, 1);
        assert_eq!(s.latency_mean_ms, 60_000.0);
        assert!(agg.snapshot_at(mins(8)).scheduler.plan_cycles == 0);
    }

    #[test]
    fn scheduler_health_counts_cycles_and_leases() {
        let tel = Telemetry::new();
        let mut agg = OpsAggregator::new(quick_config());
        tel.trace(TraceKind::PlanCycle, mins(1), None, None, String::new());
        tel.trace(TraceKind::PlanCycle, mins(2), None, None, String::new());
        tel.trace(TraceKind::LeaseGranted, mins(2), None, None, String::new());
        tel.trace(TraceKind::LeaseExpired, mins(3), None, None, String::new());
        tel.trace(TraceKind::ShardAdoption, mins(3), None, None, String::new());
        tel.counter_add("wal.appends", 17);
        agg.tick(mins(4), &tel);
        let snap = agg.snapshot_at(mins(4));
        assert_eq!(snap.scheduler.plan_cycles, 2);
        assert_eq!(snap.scheduler.last_cycle_gap_ms, 60_000);
        assert_eq!(snap.scheduler.lease_grants, 1);
        assert_eq!(snap.scheduler.lease_expiries, 1);
        assert_eq!(snap.scheduler.shard_adoptions, 1);
        assert_eq!(snap.scheduler.wal_appends, 17);
    }

    #[test]
    fn alerts_are_traced_and_counted() {
        let tel = Telemetry::new();
        let (sink, events) = InMemorySink::new();
        tel.add_sink(Box::new(sink));
        let mut agg = OpsAggregator::new(quick_config());
        tel.grid_submit(SiteId(0), 1, mins(2));
        tel.grid_submit(SiteId(0), 2, mins(3));
        agg.tick(mins(8), &tel);
        assert_eq!(tel.counter("ops.alerts"), 1);
        let traced: Vec<_> = events
            .lock()
            .iter()
            .filter(|e| e.kind == TraceKind::OpsAlert)
            .cloned()
            .collect();
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].site, Some(0));
        assert!(traced[0].detail.starts_with("black_hole "));
        // The aggregator's own alert events do not loop back into it.
        assert!(agg.tick(mins(9), &tel).is_empty());
        assert_eq!(agg.snapshot_at(mins(9)).alerts_total, 1);
    }

    #[test]
    fn same_event_sequence_gives_identical_alert_stream_and_snapshot() {
        let run = || {
            let tel = Telemetry::new();
            let mut agg = OpsAggregator::new(quick_config());
            let mut alerts = Vec::new();
            for m in 0..30u64 {
                if m % 3 == 0 {
                    tel.grid_submit(SiteId(0), m, mins(m));
                }
                tel.site_gauge_set("monitor.queue_depth", SiteId(0), (m % 5) as f64);
                tel.site_gauge_set("monitor.staleness", SiteId(0), (m * 30_000) as f64);
                alerts.extend_from_slice(agg.tick(mins(m), &tel));
            }
            let json = serde_json::to_string(&alerts).unwrap();
            (json, agg.snapshot_at(mins(30)))
        };
        let (a_json, a_snap) = run();
        let (b_json, b_snap) = run();
        assert_eq!(a_json, b_json);
        assert_eq!(a_snap, b_snap);
        // Snapshots serialize round-trip.
        let json = serde_json::to_string(&a_snap).unwrap();
        let back: OpsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a_snap);
    }

    #[test]
    fn missed_ring_events_are_surfaced_not_silent() {
        let tel = Telemetry::with_config(sphinx_telemetry::TelemetryConfig {
            trace_capacity: 4,
            ..sphinx_telemetry::TelemetryConfig::default()
        });
        let mut agg = OpsAggregator::new(quick_config());
        for i in 0..10u64 {
            tel.grid_submit(SiteId(0), i, mins(0));
        }
        agg.tick(mins(1), &tel);
        assert_eq!(agg.snapshot_at(mins(1)).events_missed, 6);
        assert_eq!(tel.counter("ops.poll.missed"), 6);
    }

    #[test]
    fn recent_alert_ring_is_bounded() {
        let tel = Telemetry::new();
        let mut agg = OpsAggregator::new(OpsConfig {
            recent_alerts: 2,
            staleness_factor: 1.0,
            update_period: Duration::from_secs(1),
            ..quick_config()
        });
        // Alternate stale / fresh on three sites to generate >2 alerts.
        for (i, site) in [0u32, 1, 2, 0, 1].iter().enumerate() {
            tel.site_gauge_set("monitor.staleness", SiteId(*site), 1e9);
            agg.tick(mins(i as u64 + 1), &tel);
            tel.site_gauge_set("monitor.staleness", SiteId(*site), 0.0);
            agg.tick(mins(i as u64 + 1), &tel);
        }
        let snap = agg.snapshot_at(mins(10));
        assert!(snap.alerts_total >= 3);
        assert_eq!(snap.recent_alerts.len(), 2);
    }
}
