//! The HTTP ops endpoint.
//!
//! A deliberately small, hand-rolled HTTP/1.1 server over
//! `std::net::TcpListener` — the workspace is offline, so there is no
//! HTTP framework to lean on, and none is needed for four read-only
//! routes:
//!
//! | route       | body                                                |
//! |-------------|-----------------------------------------------------|
//! | `/`         | static HTML dashboard that polls `/snapshot`        |
//! | `/health`   | `ok` (liveness probe)                               |
//! | `/snapshot` | the latest published [`OpsSnapshot`] as JSON        |
//! | `/metrics`  | the telemetry registry in Prometheus text format    |
//!
//! **Determinism boundary.** This module is the wall-clock side of the
//! ops plane: the serving thread reads whatever the simulation last
//! published into the shared snapshot and never feeds anything back.
//! Socket timeouts here are real-time by nature and do not touch
//! `SimTime`. The one thread spawn is scoped to serving and carries an
//! explicit lint allowance.

use crate::OpsSnapshot;
use parking_lot::Mutex;
use sphinx_telemetry::{export::prometheus_text, Telemetry};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How long a connection may dribble its request before being dropped.
const READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);
/// Largest request head we will buffer (no route here takes a body).
const MAX_REQUEST: usize = 16 * 1024;

/// A running ops endpoint. Dropping (or calling [`OpsServer::stop`])
/// shuts the serving thread down.
pub struct OpsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving the shared snapshot and the telemetry registry.
    pub fn serve(
        addr: &str,
        shared: Arc<Mutex<OpsSnapshot>>,
        telemetry: Arc<Telemetry>,
    ) -> io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        // Serving-only thread: renders published state, never touches
        // the simulation.
        // sphinx-lint: allow(thread-spawn)
        let handle = std::thread::spawn(move || {
            serve_loop(&listener, &flag, &shared, &telemetry);
        });
        Ok(OpsServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serving thread and wait for it to exit.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock `accept` by connecting to ourselves; an error just
        // means the listener is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    shared: &Mutex<OpsSnapshot>,
    telemetry: &Telemetry,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = handle_connection(stream, shared, telemetry);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Mutex<OpsSnapshot>,
    telemetry: &Telemetry,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let path = match read_request_path(&mut stream)? {
        Some(path) => path,
        None => return Ok(()),
    };
    let (status, content_type, body) = match path.as_str() {
        "/" | "/index.html" => ("200 OK", "text/html; charset=utf-8", DASHBOARD.to_owned()),
        "/health" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        "/snapshot" => {
            let json = {
                let snap = shared.lock();
                serde_json::to_string(&*snap)
            };
            match json {
                Ok(body) => ("200 OK", "application/json", body),
                Err(e) => (
                    "500 Internal Server Error",
                    "text/plain; charset=utf-8",
                    format!("snapshot serialization failed: {e}\n"),
                ),
            }
        }
        "/metrics" => {
            let snap = telemetry.snapshot();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus_text(&snap),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
    };
    write_response(&mut stream, status, content_type, body.as_bytes())
}

/// Read the request head and return the path of the request line, or
/// `None` for connections that say nothing parseable (including the
/// empty self-connect used for shutdown).
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > MAX_REQUEST {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or_default().split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    if method != "GET" || path.is_empty() {
        return Ok(None);
    }
    // Strip any query string; the routes take no parameters.
    let path = path.split('?').next().unwrap_or(path);
    Ok(Some(path.to_owned()))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The static dashboard: a single page that polls `/snapshot` and
/// renders site health, scheduler health and recent alerts.
const DASHBOARD: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>SPHINX live ops</title>
<style>
  body { font-family: ui-monospace, monospace; margin: 2rem; background: #101418; color: #d8dee6; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; margin-top: .5rem; }
  th, td { border: 1px solid #2c3440; padding: .25rem .6rem; text-align: right; }
  th { background: #1a2028; } td.name { text-align: left; }
  .bad { color: #ff6b6b; font-weight: bold; }
  .ok { color: #69d58c; }
  #meta { color: #8a93a0; margin-top: .5rem; }
</style>
</head>
<body>
<h1>SPHINX live ops</h1>
<div id="meta">connecting…</div>
<h2>Sites</h2>
<table id="sites"><thead><tr>
  <th>site</th><th>queue</th><th>stale (s)</th><th>submits</th><th>starts</th>
  <th>done</th><th>cancel</th><th>latency (s)</th><th>verdict</th>
</tr></thead><tbody></tbody></table>
<h2>Scheduler</h2>
<table id="sched"><thead><tr>
  <th>plan cycles</th><th>cycle gap (s)</th><th>WAL appends</th><th>WAL/window</th>
  <th>leases</th><th>expiries</th><th>adoptions</th>
</tr></thead><tbody></tbody></table>
<h2>Recent alerts</h2>
<table id="alerts"><thead><tr>
  <th>sim time (s)</th><th>detector</th><th>site</th><th>value</th><th>threshold</th>
</tr></thead><tbody></tbody></table>
<script>
function secs(ms) { return (ms / 1000).toFixed(1); }
function verdict(s) {
  const bad = [];
  if (s.black_hole) bad.push("black-hole");
  if (s.queue_anomaly) bad.push("queue-anomaly");
  if (s.stale) bad.push("stale");
  return bad.length ? '<span class="bad">' + bad.join(", ") + "</span>" : '<span class="ok">healthy</span>';
}
async function refresh() {
  try {
    const r = await fetch("/snapshot");
    const s = await r.json();
    document.getElementById("meta").textContent =
      "sim t=" + secs(s.now_ms) + "s · window " + secs(s.window_ms) + "s · " +
      s.ticks + " ticks · " + s.events_seen + " events (" + s.events_missed +
      " missed) · " + s.alerts_total + " alerts";
    document.querySelector("#sites tbody").innerHTML = s.sites.map(x =>
      "<tr><td class=name>" + x.site + "</td><td>" + x.queue_depth.toFixed(0) +
      "</td><td>" + secs(x.staleness_ms) + "</td><td>" + x.submits_recent +
      "</td><td>" + x.starts_recent + "</td><td>" + x.completions_recent +
      "</td><td>" + x.cancels_recent + "</td><td>" + secs(x.latency_mean_ms) +
      "</td><td>" + verdict(x) + "</td></tr>").join("");
    const h = s.scheduler;
    document.querySelector("#sched tbody").innerHTML =
      "<tr><td>" + h.plan_cycles + "</td><td>" + secs(h.last_cycle_gap_ms) +
      "</td><td>" + h.wal_appends + "</td><td>" + h.wal_appends_last_window +
      "</td><td>" + h.lease_grants + "</td><td>" + h.lease_expiries +
      "</td><td>" + h.shard_adoptions + "</td></tr>";
    document.querySelector("#alerts tbody").innerHTML = s.recent_alerts.map(a =>
      "<tr><td>" + secs(a.at) + "</td><td>" + a.detector + "</td><td>" + a.site +
      "</td><td>" + a.value.toFixed(2) + "</td><td>" + a.threshold.toFixed(2) +
      "</td></tr>").reverse().join("");
  } catch (e) {
    document.getElementById("meta").textContent = "snapshot fetch failed: " + e;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpsAlert, OpsDetector, SiteHealth};
    use sphinx_sim::SimTime;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut body = Vec::new();
        stream.read_to_end(&mut body).unwrap();
        let text = String::from_utf8(body).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    fn test_server() -> (OpsServer, Arc<Mutex<OpsSnapshot>>, Arc<Telemetry>) {
        let telemetry = Arc::new(Telemetry::new());
        let shared = Arc::new(Mutex::new(OpsSnapshot::default()));
        let server =
            OpsServer::serve("127.0.0.1:0", Arc::clone(&shared), Arc::clone(&telemetry)).unwrap();
        (server, shared, telemetry)
    }

    #[test]
    fn health_and_dashboard_respond() {
        let (server, _shared, _tel) = test_server();
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
        let (head, body) = get(server.addr(), "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("SPHINX live ops"));
        let (head, _) = get(server.addr(), "/no-such-route");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn snapshot_serves_published_state() {
        let (server, shared, _tel) = test_server();
        {
            let mut snap = shared.lock();
            snap.now_ms = 4000;
            snap.sites.push(SiteHealth {
                site: 7,
                black_hole: true,
                ..SiteHealth::default()
            });
            snap.recent_alerts.push(OpsAlert {
                at: SimTime::from_secs(4),
                detector: OpsDetector::BlackHole,
                site: 7,
                value: 3.0,
                threshold: 2.0,
            });
        }
        let (head, body) = get(server.addr(), "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let parsed: OpsSnapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed.now_ms, 4000);
        assert_eq!(parsed.sites.len(), 1);
        assert!(parsed.sites[0].black_hole);
        assert_eq!(parsed.recent_alerts[0].detector, OpsDetector::BlackHole);
    }

    #[test]
    fn metrics_serves_prometheus_text() {
        let (server, _shared, tel) = test_server();
        tel.counter_add("ops.alerts", 3);
        tel.site_gauge_set("monitor.staleness", sphinx_data::SiteId(1), 1500.0);
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("sphinx_ops_alerts 3"), "{body}");
        assert!(
            body.contains("sphinx_monitor_staleness{site=\"1\"} 1500"),
            "{body}"
        );
        sphinx_telemetry::export::validate_prometheus(&body).unwrap();
    }

    #[test]
    fn stop_terminates_the_serving_thread() {
        let (mut server, _shared, _tel) = test_server();
        let addr = server.addr();
        server.stop();
        // A second stop is a no-op; the port no longer answers.
        server.stop();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may allow one last connect to a closing socket;
                // but the thread is provably joined by `stop` returning.
                true
            }
        );
    }
}
