//! The client/server process split (paper Figure 1): the SPHINX server in
//! its own thread behind an RPC boundary, the scheduling client on this
//! side driving the grid.
//!
//! ```text
//! cargo run --release --example rpc_deployment
//! ```
//!
//! In the original deployment the two halves were separate processes
//! speaking GSI-enabled XML-RPC through Clarens. Here the boundary is a
//! pair of typed channels — same shape: the client never touches the
//! server's database, it only submits DAGs, forwards tracker reports and
//! asks for plans.

use sphinx::core::client::{ClientConfig, SphinxClient};
use sphinx::core::rpc::ServerHandle;
use sphinx::core::server::ServerConfig;
use sphinx::core::strategy::{SiteInfo, StrategyKind};
use sphinx::dag::WorkloadSpec;
use sphinx::data::{SiteId, TransferModel};
use sphinx::db::Database;
use sphinx::grid::GridSim;
use sphinx::policy::UserId;
use sphinx::sim::{Duration, SimRng, SimTime};
use sphinx::workloads::grid3;
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // Grid + client live here; the server lives in its own thread.
    let sites = grid3::catalog_small();
    let catalog: Vec<SiteInfo> = sites
        .iter()
        .map(|s| SiteInfo {
            id: s.id,
            name: s.name.clone(),
            cpus: s.cpus,
        })
        .collect();
    let mut grid = GridSim::new(sites, TransferModel::default(), 9);
    let mut client = SphinxClient::new(ClientConfig::default());

    let server = ServerHandle::spawn(
        Arc::new(Database::in_memory()),
        catalog,
        ServerConfig {
            strategy: StrategyKind::CompletionTime,
            feedback: true,
            policy_enabled: false,
            archive_site: None,
            score_cache: true,
            ops_fast_path: false,
        },
    );
    println!("server thread booted; submitting a 30-job DAG over RPC…");

    let dag = WorkloadSpec::small(1, 30)
        .generate(&SimRng::new(9), 0)
        .remove(0);
    for f in dag.external_inputs() {
        grid.rls_mut().register(f, SiteId(0));
    }
    server.submit_dag(&dag, UserId(1), grid.now(), None);

    // The client's event loop: step the grid, forward notifications as
    // tracker reports, ask the remote server for plans periodically.
    const PLANNER_TOKEN: u64 = 1;
    grid.schedule_wakeup(grid.now() + Duration::from_secs(15), PLANNER_TOKEN);
    let horizon = SimTime::from_secs(24 * 3600);
    while !server.all_finished() && grid.now() < horizon {
        if !grid.step() {
            break;
        }
        let now = grid.now();
        for n in grid.poll() {
            match n {
                sphinx::grid::Notification::Wakeup {
                    token: PLANNER_TOKEN,
                } => {
                    // Lend the replica catalog to the server for the call.
                    let rls = std::mem::take(grid.rls_mut());
                    let (plans, rls_back) =
                        server.plan_cycle(now, rls, BTreeMap::new(), grid.transfer_model());
                    *grid.rls_mut() = rls_back;
                    for plan in &plans {
                        client.submit_plan(&mut grid, plan, now);
                    }
                    grid.schedule_wakeup(now + Duration::from_secs(15), PLANNER_TOKEN);
                }
                other => {
                    if let Some(report) = client.on_notification(&other, now) {
                        server.report(report, now);
                    }
                }
            }
        }
    }

    let stats = server.stats();
    println!(
        "done at t={:.0}s: {} plans issued, {} reschedules",
        grid.now().as_secs_f64(),
        stats.plans,
        stats.reschedules_total()
    );
    assert!(server.all_finished(), "workload must complete over RPC");
    server.shutdown();
    println!("server thread joined cleanly");
}
