//! Policy-constrained scheduling (paper §4.4 / eq. 4).
//!
//! ```text
//! cargo run --release --example policy_quotas
//! ```
//!
//! Demonstrates the quota machinery directly through the runtime API —
//! two users in one VO, one with quota everywhere, one restricted to two
//! small sites — and shows that the restricted user's jobs only ever land
//! where eq. 4 allows.

use sphinx::core::runtime::{RuntimeConfig, SphinxRuntime};
use sphinx::core::strategy::StrategyKind;
use sphinx::dag::WorkloadSpec;
use sphinx::data::{SiteId, TransferModel};
use sphinx::grid::GridSim;
use sphinx::policy::{Requirement, UserId, VoId};
use sphinx::sim::SimRng;
use sphinx::workloads::grid3;

fn main() {
    let sites = grid3::catalog_small();
    let site_ids: Vec<SiteId> = sites.iter().map(|s| s.id).collect();
    let mut grid = GridSim::new(sites, TransferModel::default(), 7);

    // Two users' workloads: one DAG each.
    let dags = WorkloadSpec::small(2, 15).generate(&SimRng::new(7), 0);
    for dag in &dags {
        for file in dag.external_inputs() {
            grid.rls_mut().register(file, SiteId(0));
        }
    }

    let config = RuntimeConfig {
        strategy: StrategyKind::NumCpus,
        policy_enabled: true,
        ..RuntimeConfig::default()
    };
    let mut rt = SphinxRuntime::new(grid, config);

    // VO "uscms": alice may run anywhere; bob only on the two small sites.
    let policy = rt.server_mut().policy_mut();
    policy.add_vo(VoId(0), "uscms");
    policy.add_user(UserId(1), VoId(0), 10); // alice
    policy.add_user(UserId(2), VoId(0), 5); // bob
    let ample = Requirement::new(1_000_000, 1_000_000);
    for &site in &site_ids {
        policy.grant(UserId(1), site, ample);
    }
    policy.grant(UserId(2), SiteId(1), ample);
    policy.grant(UserId(2), SiteId(2), ample);

    rt.submit_dag(&dags[0], UserId(1)); // alice's DAG
    rt.submit_dag(&dags[1], UserId(2)); // bob's DAG

    let report = rt.run();
    println!("finished: {}", report.finished);
    println!("jobs completed: {}", report.jobs_completed);

    // Where did bob's jobs run? Check the per-job site assignments in the
    // server's database.
    use sphinx::core::state::{JobRow, JobState};
    let db = rt.server().database();
    let bobs_sites: Vec<SiteId> = db
        .scan_filter::<JobRow>(|j| j.id.dag == dags[1].id && j.state == JobState::Finished)
        .expect("job table scans")
        .into_iter()
        .filter_map(|j| j.site)
        .collect();
    println!(
        "bob's {} jobs ran on sites: {:?}",
        bobs_sites.len(),
        bobs_sites
            .iter()
            .map(|s| s.0)
            .collect::<std::collections::BTreeSet<_>>()
    );
    assert!(
        bobs_sites
            .iter()
            .all(|s| *s == SiteId(1) || *s == SiteId(2)),
        "eq. 4 must confine bob to his quota sites"
    );
    println!("policy constraint respected: bob never left sites 1 and 2");

    // Quota accounting: alice was charged for her usage.
    let acct = rt
        .server()
        .policy()
        .account(UserId(1), SiteId(0))
        .expect("alice has an account at site 0");
    println!(
        "alice @ site0: used {} CPU-seconds of {} granted",
        acct.used.cpu_seconds, acct.granted.cpu_seconds
    );
}
