//! Quickstart: schedule two small DAG workflows on a 4-site grid.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the public API: build a
//! scenario (grid + workload + SPHINX configuration), attach a JSONL
//! trace sink, run it, inspect the report and the telemetry counters.

use sphinx::core::strategy::StrategyKind;
use sphinx::telemetry::JsonlSink;
use sphinx::workloads::{grid3, Scenario};

fn main() {
    let scenario = Scenario::builder()
        .seed(42)
        .sites(grid3::catalog_small())
        .dags(2, 20) // 2 DAGs × 20 jobs
        .strategy(StrategyKind::CompletionTime)
        .build();

    println!("Scheduling 2 DAGs × 20 jobs on a 4-site grid…\n");
    let mut rt = scenario.build_runtime();

    // Stream every trace event (FSA transitions, plan cycles, grid
    // lifecycle, …) to a JSONL file as the run progresses.
    let trace_file = std::fs::File::create("quickstart_trace.jsonl").expect("create trace file");
    rt.telemetry()
        .add_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(
            trace_file,
        ))));

    let report = rt.run();
    rt.telemetry().flush_sinks();

    println!("strategy:            {}", report.strategy);
    println!("finished:            {}", report.finished);
    println!("jobs completed:      {}", report.jobs_completed);
    println!(
        "avg DAG completion:  {:.0} s",
        report.avg_dag_completion_secs
    );
    println!("avg job exec time:   {:.1} s", report.avg_exec_secs);
    println!("avg job idle time:   {:.1} s", report.avg_idle_secs);
    println!(
        "timeouts/replans:    {}/{}",
        report.timeouts,
        report.reschedules()
    );

    println!("\nper-site distribution:");
    for site in &report.sites {
        println!(
            "  {:<8} {:>3} completed, {:>2} cancelled, avg completion {}",
            site.name,
            site.completed,
            site.cancelled,
            site.avg_completion_secs
                .map(|v| format!("{v:.0} s"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    let t = &report.telemetry;
    println!("\ntelemetry ({} distinct metrics):", t.distinct_metrics());
    println!("  plan cycles:       {}", t.counter("plan.cycles"));
    println!("  grid submits:      {}", t.counter("grid.submits"));
    println!("  grid completions:  {}", t.counter("grid.completions"));
    println!("  WAL appends:       {}", t.counter("wal.appends"));
    println!(
        "  trace events:      {} (written to quickstart_trace.jsonl)",
        t.trace_recorded
    );

    assert!(report.finished, "quickstart should always finish");
}
