//! Quickstart: schedule two small DAG workflows on a 4-site grid.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the public API: build a
//! scenario (grid + workload + SPHINX configuration), run it, inspect the
//! report.

use sphinx::core::strategy::StrategyKind;
use sphinx::workloads::{grid3, Scenario};

fn main() {
    let scenario = Scenario::builder()
        .seed(42)
        .sites(grid3::catalog_small())
        .dags(2, 20) // 2 DAGs × 20 jobs
        .strategy(StrategyKind::CompletionTime)
        .build();

    println!("Scheduling 2 DAGs × 20 jobs on a 4-site grid…\n");
    let report = scenario.run();

    println!("strategy:            {}", report.strategy);
    println!("finished:            {}", report.finished);
    println!("jobs completed:      {}", report.jobs_completed);
    println!(
        "avg DAG completion:  {:.0} s",
        report.avg_dag_completion_secs
    );
    println!("avg job exec time:   {:.1} s", report.avg_exec_secs);
    println!("avg job idle time:   {:.1} s", report.avg_idle_secs);
    println!("timeouts/replans:    {}/{}", report.timeouts, report.reschedules());

    println!("\nper-site distribution:");
    for site in &report.sites {
        println!(
            "  {:<8} {:>3} completed, {:>2} cancelled, avg completion {}",
            site.name,
            site.completed,
            site.cancelled,
            site.avg_completion_secs
                .map(|v| format!("{v:.0} s"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    assert!(report.finished, "quickstart should always finish");
}
