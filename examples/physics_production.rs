//! A high-energy-physics production campaign on the full Grid3 catalog —
//! the workload class that motivated SPHINX (GriPhyN / CMS / ATLAS
//! production: generate → simulate → digitise → reconstruct pipelines).
//!
//! ```text
//! cargo run --release --example physics_production
//! ```
//!
//! Uses the layered DAG shape (each layer consumes the previous layer's
//! outputs), a faulty grid (a black hole and crash-prone sites, as any
//! real production week had), and compares the completion-time hybrid
//! against plain round-robin on the *same* grid trace.

use sphinx::core::strategy::StrategyKind;
use sphinx::dag::{DagShape, WorkloadSpec};
use sphinx::sim::Duration;
use sphinx::workloads::{grid3, FaultPlan, Scenario};

fn campaign(strategy: StrategyKind) -> sphinx::core::RunReport {
    let workload = WorkloadSpec {
        dags: 4,
        jobs_per_dag: 60,
        shape: DagShape::Layered { layers: 4 }, // gen → sim → digi → reco
        compute_mean: Duration::from_mins(2),
        compute_jitter: 0.3,
        output_mb: (100, 800),
        inputs_per_job: (1, 3),
    };
    Scenario::builder()
        .seed(2004) // same seed ⇒ same grid trace for both strategies
        .sites(grid3::catalog())
        .workload(workload)
        .faults(FaultPlan {
            black_holes: 1,
            flaky: 2,
            ..FaultPlan::default()
        })
        .strategy(strategy)
        .timeout(Duration::from_mins(30))
        .build()
        .run()
}

fn main() {
    println!("CMS-style production: 4 campaigns × 60 jobs, 4-layer pipelines");
    println!(
        "grid: 15 Grid3 sites / {} CPUs, 1 black hole + 2 flaky sites\n",
        grid3::total_cpus()
    );

    let smart = campaign(StrategyKind::CompletionTime);
    let naive = campaign(StrategyKind::RoundRobin);

    for (name, r) in [("completion-time hybrid", &smart), ("round-robin", &naive)] {
        println!(
            "{name:>22}: avg campaign {:.0} s, {} jobs, {} timeouts, {} holds",
            r.avg_dag_completion_secs, r.jobs_completed, r.timeouts, r.holds
        );
    }

    let speedup = naive.avg_dag_completion_secs / smart.avg_dag_completion_secs;
    println!("\ncompletion-time hybrid finishes campaigns {speedup:.2}× faster");
    assert!(smart.finished && naive.finished);
}
