//! Fault tolerance of the middleware itself: kill the SPHINX server
//! mid-workload and recover it from the write-ahead log (paper §3.1,
//! "robust and recoverable system").
//!
//! ```text
//! cargo run --release --example server_recovery
//! ```
//!
//! The grid — with jobs still queued and running — survives the crash;
//! only the server and its tracker die. The recovered server replays the
//! log, conservatively replans everything that was in flight, and drives
//! the workload to completion.

use sphinx::core::runtime::SphinxRuntime;
use sphinx::db::{Database, MemWal};
use sphinx::sim::{Duration, SimTime};
use sphinx::workloads::{grid3, Scenario};
use std::sync::Arc;

fn main() {
    let scenario = Scenario::builder()
        .seed(11)
        .sites(grid3::catalog_small())
        .dags(2, 25)
        .build();

    // WAL-backed database: the shared log is the server's persistence.
    let wal = MemWal::shared();
    let db = Arc::new(Database::with_wal(Box::new(wal.clone())));
    let mut rt = scenario.build_runtime_with_db(Arc::clone(&db));

    // Run for five simulated minutes, then "crash".
    let crash_at = SimTime::ZERO + Duration::from_mins(5);
    rt.run_until(crash_at);
    let before = rt.build_report().expect("report");
    println!(
        "t={:>4.0}s  server crashes: {} of 50 jobs finished, {} in flight",
        crash_at.as_secs_f64(),
        before.jobs_completed,
        rt.client().tracked(),
    );
    let config = rt.config().clone();
    let grid = rt.into_grid(); // server + tracker die; the grid does not

    // Recover: replay the WAL into a fresh database, rebuild the server.
    println!("replaying {} WAL entries…", wal.len());
    let recovered = Arc::new(Database::recover(Box::new(wal)).expect("log replays cleanly"));
    let mut rt2 = SphinxRuntime::with_recovered_database(grid, config, recovered).unwrap();

    let report = rt2.run();
    println!(
        "t={:>4.0}s  workload complete: finished={} jobs={}",
        report.makespan_secs, report.finished, report.jobs_completed
    );
    println!("timeouts {} / holds {}", report.timeouts, report.holds);
    assert!(report.finished, "recovery must complete the workload");
    assert_eq!(report.jobs_completed + report.jobs_eliminated, 50);
    println!("\nevery DAG finished despite the mid-run server crash");
}
