//! `sphinx` — command-line front end for running scheduling scenarios.
//!
//! ```text
//! sphinx run --dags 3 --jobs 100 --strategy completion-time --seed 42
//! sphinx run --sites small --strategy round-robin --no-feedback --black-holes 1
//! sphinx compare --dags 6 --jobs 50 --seed 7
//! sphinx sites
//! ```
//!
//! `run` executes one scenario and prints (or `--json`-dumps) the report;
//! `compare` runs all four strategies on the same grid trace; `sites`
//! lists the built-in Grid3 catalog.

use sphinx::core::strategy::StrategyKind;
use sphinx::policy::Requirement;
use sphinx::sim::Duration;
use sphinx::workloads::{grid3, FaultPlan, Scenario, ScenarioBuilder};
use std::process::ExitCode;

#[derive(Debug)]
struct RunArgs {
    config: Option<String>,
    dags: u32,
    jobs: u32,
    seed: u64,
    strategy: StrategyKind,
    feedback: bool,
    small: bool,
    black_holes: u32,
    flaky: u32,
    quota: Option<u64>,
    timeout_mins: u64,
    json: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            config: None,
            dags: 3,
            jobs: 100,
            seed: 42,
            strategy: StrategyKind::CompletionTime,
            feedback: true,
            small: false,
            black_holes: 0,
            flaky: 0,
            quota: None,
            timeout_mins: 30,
            json: false,
        }
    }
}

fn usage() -> &'static str {
    "usage: sphinx <command> [options]\n\
     \n\
     commands:\n\
       run       run one scenario and print the report\n\
       compare   run all four strategies on the same grid trace\n\
       sites     list the built-in Grid3 site catalog\n\
       template  print a scenario JSON template for --config\n\
     \n\
     options (run / compare):\n\
       --config FILE       load the whole scenario from a JSON file (run only)\n\
       --dags N            number of DAGs            [3]\n\
       --jobs N            jobs per DAG              [100]\n\
       --seed N            experiment seed           [42]\n\
       --strategy S        completion-time | queue-length | num-cpus | round-robin\n\
       --no-feedback       disable the reliability feedback\n\
       --sites small       4-site catalog instead of the 15-site Grid3 one\n\
       --black-holes N     plant N black-hole sites  [0]\n\
       --flaky N           plant N crash-prone sites [0]\n\
       --quota CPUSECS     enable policy mode with this per-site CPU quota\n\
       --timeout MINS      tracker timeout           [30]\n\
       --json              emit the full report as JSON\n"
}

fn parse_strategy(s: &str) -> Option<StrategyKind> {
    StrategyKind::ALL.into_iter().find(|k| k.label() == s)
}

fn parse_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--dags" => out.dags = value("--dags")?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => out.jobs = value("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => out.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--strategy" => {
                let v = value("--strategy")?;
                out.strategy =
                    parse_strategy(v).ok_or_else(|| format!("unknown strategy `{v}`"))?;
            }
            "--no-feedback" => out.feedback = false,
            "--sites" => {
                let v = value("--sites")?;
                match v.as_str() {
                    "small" => out.small = true,
                    "grid3" => out.small = false,
                    other => return Err(format!("unknown catalog `{other}`")),
                }
            }
            "--black-holes" => {
                out.black_holes = value("--black-holes")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--flaky" => out.flaky = value("--flaky")?.parse().map_err(|e| format!("{e}"))?,
            "--quota" => out.quota = Some(value("--quota")?.parse().map_err(|e| format!("{e}"))?),
            "--timeout" => {
                out.timeout_mins = value("--timeout")?.parse().map_err(|e| format!("{e}"))?
            }
            "--config" => out.config = Some(value("--config")?.clone()),
            "--json" => out.json = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(out)
}

fn builder(args: &RunArgs) -> ScenarioBuilder {
    let sites = if args.small {
        grid3::catalog_small()
    } else {
        grid3::catalog()
    };
    let mut b = Scenario::builder()
        .seed(args.seed)
        .sites(sites)
        .dags(args.dags, args.jobs)
        .strategy(args.strategy)
        .feedback(args.feedback)
        .timeout(Duration::from_mins(args.timeout_mins))
        .faults(FaultPlan {
            black_holes: args.black_holes,
            flaky: args.flaky,
            ..FaultPlan::default()
        });
    if let Some(cpu) = args.quota {
        b = b.quota(Requirement::new(cpu, 1_000_000));
    }
    b
}

fn cmd_run(args: &RunArgs) -> ExitCode {
    let scenario = match &args.config {
        Some(path) => {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match serde_json::from_str::<Scenario>(&json) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {path} is not a valid scenario: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => builder(args).build(),
    };
    let report = scenario.run();
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        println!("{}", report.summary());
        println!("\nper-site distribution:");
        for s in &report.sites {
            println!(
                "  {:<12} {:>5} completed  {:>4} cancelled  avg {}",
                s.name,
                s.completed,
                s.cancelled,
                s.avg_completion_secs
                    .map(|v| format!("{v:.0}s"))
                    .unwrap_or_else(|| "-".into())
            );
        }
    }
    if report.finished {
        ExitCode::SUCCESS
    } else {
        eprintln!("warning: horizon hit before completion");
        ExitCode::FAILURE
    }
}

fn cmd_compare(args: &RunArgs) -> ExitCode {
    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>9} {:>6}",
        "strategy", "avg dag (s)", "exec (s)", "idle (s)", "timeouts", "done"
    );
    let mut ok = true;
    for strategy in StrategyKind::ALL {
        let mut a = RunArgs {
            strategy,
            ..RunArgs::default()
        };
        a.dags = args.dags;
        a.jobs = args.jobs;
        a.seed = args.seed;
        a.small = args.small;
        a.black_holes = args.black_holes;
        a.flaky = args.flaky;
        a.feedback = args.feedback;
        a.timeout_mins = args.timeout_mins;
        let report = builder(&a).build().run();
        println!(
            "{:<18} {:>12.0} {:>10.1} {:>10.1} {:>9} {:>6}",
            strategy.label(),
            report.avg_dag_completion_secs,
            report.avg_exec_secs,
            report.avg_idle_secs,
            report.timeouts,
            if report.finished { "yes" } else { "NO" }
        );
        ok &= report.finished;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_sites() -> ExitCode {
    println!(
        "{:<14} {:>6} {:>7} {:>12}",
        "site", "cpus", "speed", "background"
    );
    for s in grid3::catalog() {
        println!(
            "{:<14} {:>6} {:>7.2} {:>12}",
            s.name,
            s.cpus,
            s.cpu_speed,
            if s.background.arrival_mean.is_some() {
                "competing"
            } else {
                "idle"
            }
        );
    }
    println!("total: {} CPUs across 15 sites", grid3::total_cpus());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "run" | "compare" => match parse_args(rest) {
            Ok(args) => {
                if command == "run" {
                    cmd_run(&args)
                } else {
                    cmd_compare(&args)
                }
            }
            Err(e) => {
                eprintln!("error: {e}\n");
                eprint!("{}", usage());
                ExitCode::FAILURE
            }
        },
        "sites" => cmd_sites(),
        "template" => {
            let scenario = Scenario::builder()
                .sites(grid3::catalog_small())
                .dags(2, 20)
                .build();
            println!(
                "{}",
                serde_json::to_string_pretty(&scenario).expect("scenario serializes")
            );
            ExitCode::SUCCESS
        }
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command `{other}`\n");
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
