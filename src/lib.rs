//! # SPHINX
//!
//! A fault-tolerant, policy-aware scheduling middleware for dynamic grid
//! environments — a from-scratch Rust reproduction of *"SPHINX: A
//! Fault-Tolerant System for Scheduling in Dynamic Grid Environments"*
//! (In, Avery, Cavanaugh, Chitnis, Kulkarni, Ranka — IPDPS 2005).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel.
//! * [`db`] — transactional table store with write-ahead logging (the
//!   server's recoverable state substrate).
//! * [`dag`] — abstract workflow DAGs, generators and reduction.
//! * [`data`] — replica location service, storage and transfer model.
//! * [`grid`] — the Grid3-style grid substrate: sites, batch queues,
//!   background load, fault injection.
//! * [`monitor`] — monitoring service with propagation latency/staleness.
//! * [`telemetry`] — structured tracing and metrics across the FSA
//!   pipeline: sim-time-stamped trace events, counters, histograms.
//! * [`policy`] — virtual organisations, users, resource-usage quotas.
//! * [`core`] — SPHINX itself: server state machine, planner strategies,
//!   client and job tracker.
//! * [`workloads`] — Grid3 site catalog, workload builders, experiment
//!   presets for every figure of the paper.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use sphinx::workloads::{grid3, scenario::Scenario};
//! use sphinx::core::strategy::StrategyKind;
//!
//! let scenario = Scenario::builder()
//!     .seed(42)
//!     .sites(grid3::catalog_small())
//!     .dags(2, 20)
//!     .strategy(StrategyKind::CompletionTime)
//!     .build();
//! let report = scenario.run();
//! assert_eq!(report.jobs_completed, 40);
//! ```

pub use sphinx_core as core;
pub use sphinx_dag as dag;
pub use sphinx_data as data;
pub use sphinx_db as db;
pub use sphinx_grid as grid;
pub use sphinx_monitor as monitor;
pub use sphinx_ops as ops;
pub use sphinx_policy as policy;
pub use sphinx_sim as sim;
pub use sphinx_telemetry as telemetry;
pub use sphinx_workloads as workloads;
